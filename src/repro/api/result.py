"""The uniform result type returned by every facade entry point."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any


@dataclass
class SolveResult:
    """One solved problem instance, backend-agnostic.

    Attributes:
        problem: The :attr:`Problem.name` domain tag.
        method: Backend name (``"sa"``, ``"annealer"``, ``"classical"``, ...).
        solution: Domain-native decoded solution (plan selection, join
            order/tree, attribute matching, slot assignment, ...).
        objective: Exact domain objective of ``solution`` (lower is better;
            maximisation domains report the negated score).
        energy: Best sampled QUBO energy.  **NaN-energy convention:** a NaN
            here means the backend bypassed QUBO *sampling* entirely (the
            ``"classical"`` direct-solve path) — there simply is no sampled
            energy to report, and ``NaN`` is deliberately unequal to every
            real energy so it can never masquerade as one.  Test via
            :attr:`used_qubo`, not ``==`` (NaN compares unequal to itself).
        wall_time: End-to-end seconds spent solving.  A cache-served result
            keeps the wall time of the original solve it memoised.
        num_variables: Size of the problem's QUBO formulation.  Reported on
            every path — direct-solve backends skip sampling but still
            formulate, so result rows stay comparable across backends.
        info: Backend diagnostics (sampler stats, embedding chain metrics,
            QAOA expectation, portfolio breakdown, ...).  Engine-executed
            results add ``info["engine"]``: shard id/position/size, the
            shard's 16-hex structure ``signature`` (the adaptive
            scheduler's scoreboard key), executor name, the item's child
            seed, a truncated QUBO fingerprint, and ``cache_hit``.
            Scheduler-routed results additionally carry
            ``info["engine"]["scheduler"]`` (chosen backend, routing mode
            ``cold``/``explore``/``exploit``, candidate list), and a
            scheduled portfolio stamps the ranking and raced subset into
            ``info["portfolio_meta"]["scheduler"]``.
    """

    problem: str
    method: str
    solution: Any
    objective: float
    energy: float = math.nan
    wall_time: float = 0.0
    num_variables: int = 0
    info: dict = field(default_factory=dict)

    @property
    def used_qubo(self) -> bool:
        """Whether this result came through QUBO sampling (NaN energy = no)."""
        return not math.isnan(self.energy)

    @property
    def cache_hit(self) -> bool:
        """Whether the engine served this result from its ResultCache."""
        return bool(self.info.get("engine", {}).get("cache_hit", False))

    @property
    def engine(self) -> dict:
        """The ``info["engine"]`` telemetry block (empty dict off-engine)."""
        return self.info.get("engine", {})

    @property
    def scheduled_backend(self) -> "str | None":
        """Backend an adaptive scheduler routed this item to, if any."""
        return self.engine.get("scheduler", {}).get("backend")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolveResult({self.problem!r} via {self.method!r}, "
            f"objective={self.objective:.6g}, {self.wall_time * 1e3:.1f} ms)"
        )
