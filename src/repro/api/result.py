"""The uniform result type returned by every facade entry point."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any


@dataclass
class SolveResult:
    """One solved problem instance, backend-agnostic.

    Attributes:
        problem: The :attr:`Problem.name` domain tag.
        method: Backend name (``"sa"``, ``"annealer"``, ``"classical"``, ...).
        solution: Domain-native decoded solution (plan selection, join
            order/tree, attribute matching, slot assignment, ...).
        objective: Exact domain objective of ``solution`` (lower is better;
            maximisation domains report the negated score).
        energy: Best sampled QUBO energy (``nan`` for backends that bypass
            the QUBO pipeline).
        wall_time: End-to-end seconds spent inside the facade call.
        num_variables: QUBO size (0 when no QUBO was built).
        info: Backend diagnostics (sampler stats, embedding chain metrics,
            QAOA expectation, portfolio breakdown, ...).
    """

    problem: str
    method: str
    solution: Any
    objective: float
    energy: float = math.nan
    wall_time: float = 0.0
    num_variables: int = 0
    info: dict = field(default_factory=dict)

    @property
    def used_qubo(self) -> bool:
        """Whether this result came through the QUBO pipeline."""
        return not math.isnan(self.energy)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolveResult({self.problem!r} via {self.method!r}, "
            f"objective={self.objective:.6g}, {self.wall_time * 1e3:.1f} ms)"
        )
