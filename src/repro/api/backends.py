"""The pluggable solver layer: every engine behind one ``run`` signature.

A :class:`Backend` consumes a QUBO and returns a
:class:`~repro.qubo.sampleset.SampleSet` — nothing domain-specific crosses
this boundary, which is what lets one facade serve every Table I workload
on every machine class.  The registry maps short names (``"sa"``,
``"qaoa"``, ``"annealer"``, ...) to backend factories so callers select
engines by string; new engines (real hardware clients, async dispatchers)
plug in via :func:`register_backend` without touching any domain code.

Backends are stateful on purpose: the annealer backend memoises hardware
embeddings and the gate-model backends memoise optimised angles, keyed by
the QUBO's structural signature, so batch execution
(:func:`repro.api.facade.solve_many`) amortises the expensive setup across
structurally identical instances.
"""

from __future__ import annotations

import abc
from typing import Callable

from repro.api.problem import qubo_signature
from repro.exceptions import ReproError
from repro.qubo.model import QuboModel
from repro.qubo.sampleset import SampleSet
from repro.utils.rngtools import ensure_rng


class Backend(abc.ABC):
    """One solver engine with a uniform sampling interface."""

    #: Registry name / result method tag.
    name: str = "backend"

    #: True for engines that skip the QUBO and solve the domain problem
    #: directly (classical baselines); those implement ``solve_problem``.
    solves_problem_directly: bool = False

    #: True for latency-bound clients that implement the coroutine
    #: :meth:`run_async`; the engine's ``async`` executor awaits those
    #: directly on its event loop instead of dedicating a worker thread to
    #: each in-flight shard.
    supports_async: bool = False

    #: Largest QUBO (variable count) this engine can take in one call, or
    #: ``None`` for no inherent limit.  The facade's ``decompose=True`` auto
    #: threshold and the qbsolv-style splitter in
    #: :mod:`repro.engine.decompose` consult this before dispatch; hardware
    #: clients should set it to their device's usable qubit count.
    capacity: "int | None" = None

    @abc.abstractmethod
    def run(self, model: QuboModel, rng=None, **opts) -> SampleSet:
        """Sample low-energy assignments of ``model``."""

    async def run_async(self, model: QuboModel, rng=None, **opts) -> SampleSet:
        """Coroutine variant of :meth:`run` for latency-bound clients.

        Implementations (remote annealer/QAOA endpoints that wait on the
        network) must set ``supports_async = True`` and return **the same
        samples** :meth:`run` would for the same model and RNG — the
        determinism contract of the engine does not bend for transport.
        The default simply delegates to :meth:`run` so subclasses can opt
        in by flipping the flag when their ``run`` is already non-blocking;
        true async clients override this with real awaits.
        """
        return self.run(model, rng=rng, **opts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


# -- registry -------------------------------------------------------------

_REGISTRY: dict[str, Callable[..., Backend]] = {}


def register_backend(name: str, factory: Callable[..., Backend], overwrite: bool = False) -> None:
    """Register a backend factory under ``name``.

    ``factory(**opts)`` must return a :class:`Backend`.  Re-registering an
    existing name raises unless ``overwrite=True`` (so typos do not silently
    shadow built-ins).
    """
    if name in _REGISTRY and not overwrite:
        raise ReproError(f"backend {name!r} already registered (pass overwrite=True)")
    _REGISTRY[name] = factory


def get_backend(name: str, **opts) -> Backend:
    """Instantiate the backend registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown backend {name!r}; registered: {', '.join(list_backends())}"
        ) from None
    return factory(**opts)


def list_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


# -- built-in engines ------------------------------------------------------


class BruteForceBackend(Backend):
    """Exhaustive enumeration (exact ground truth; exponential)."""

    name = "bruteforce"

    def __init__(self, keep: int = 16, max_variables: int = 22):
        from repro.qubo.bruteforce import BruteForceSolver

        self._solver = BruteForceSolver(max_variables=max_variables)
        self._keep = keep
        self.capacity = max_variables

    def run(self, model: QuboModel, rng=None, **opts) -> SampleSet:
        return self._solver.solve(model, keep=self._keep)


class TabuBackend(Backend):
    """Multi-restart tabu search (the classical heuristic reference)."""

    name = "tabu"

    def __init__(self, num_restarts: int = 8, max_iterations: int = 500, tenure: "int | None" = None):
        from repro.qubo.tabu import TabuSolver

        self._solver = TabuSolver(
            num_restarts=num_restarts, max_iterations=max_iterations, tenure=tenure
        )

    def run(self, model: QuboModel, rng=None, **opts) -> SampleSet:
        return self._solver.solve(model, rng=ensure_rng(rng))


class SimulatedAnnealingBackend(Backend):
    """Thermal Metropolis annealing on the logical QUBO (no topology)."""

    name = "sa"

    def __init__(self, num_reads: int = 16, num_sweeps: int = 200, quench: bool = True):
        from repro.annealing.simulated_annealing import SimulatedAnnealingSolver

        self._solver = SimulatedAnnealingSolver(
            num_reads=num_reads, num_sweeps=num_sweeps, quench=quench
        )

    def run(self, model: QuboModel, rng=None, **opts) -> SampleSet:
        return self._solver.solve(model, rng=ensure_rng(rng))


class SimulatedQuantumAnnealingBackend(Backend):
    """Path-integral (transverse-field) annealing on the logical QUBO."""

    name = "sqa"

    def __init__(self, num_reads: int = 8, num_sweeps: int = 128, num_slices: int = 8):
        from repro.annealing.sqa import SimulatedQuantumAnnealingSolver

        self._solver = SimulatedQuantumAnnealingSolver(
            num_reads=num_reads, num_sweeps=num_sweeps, num_slices=num_slices
        )

    def run(self, model: QuboModel, rng=None, **opts) -> SampleSet:
        return self._solver.solve(model, rng=ensure_rng(rng))


class AnnealerBackend(Backend):
    """The full annealer device pipeline: embed onto Chimera, sample, unembed.

    Embeddings are memoised by QUBO structure, so a batch of same-shaped
    instances (the :func:`~repro.api.facade.solve_many` case) pays the
    embedding search once.
    """

    name = "annealer"

    def __init__(
        self,
        device=None,
        sampler: str = "sa",
        num_reads: int = 24,
        num_sweeps: int = 256,
        use_embedding: bool = True,
        cache_embeddings: bool = True,
    ):
        from repro.annealing.device import AnnealerDevice

        self.device = device or AnnealerDevice(
            sampler=sampler, num_reads=num_reads, num_sweeps=num_sweeps
        )
        self.use_embedding = use_embedding
        self.cache_embeddings = cache_embeddings
        self._embedding_cache: dict = {}
        # A logical problem can never use more variables than the device has
        # physical qubits (chains only shrink the usable count further).
        self.capacity = self.device.num_qubits if use_embedding else None

    def run(self, model: QuboModel, rng=None, **opts) -> SampleSet:
        rng = ensure_rng(rng)
        if not self.use_embedding:
            return self.device.sample_unembedded(model, rng=rng)
        # A cached embedding maps variable *indices*; any same-signature
        # model shares those indices, so reuse is label-safe.
        key = qubo_signature(model) if self.cache_embeddings else None
        embedding = self._embedding_cache.get(key) if key is not None else None
        cache_hit = embedding is not None
        if embedding is None:
            embedding = self.device.find_embedding(model, rng=rng)
            if key is not None:
                self._embedding_cache[key] = embedding
        samples = self.device.sample(model, rng=rng, embedding=embedding)
        samples.info["embedding_cached"] = cache_hit
        return samples


class QAOABackend(Backend):
    """Gate-model QAOA over the QUBO's Ising form.

    Optimised angles are memoised by QUBO structure and reused as the
    warm-start of the next structurally identical instance — the
    "compiled circuit reuse" of batch execution (concentration of QAOA
    angles across like instances is a known empirical effect).
    """

    name = "qaoa"

    def __init__(
        self,
        num_layers: int = 2,
        maxiter: int = 150,
        restarts: int = 2,
        shots: int = 512,
        optimizer: str = "COBYLA",
        warm_start: bool = True,
    ):
        self.num_layers = num_layers
        self.maxiter = maxiter
        self.restarts = restarts
        self.shots = shots
        self.optimizer = optimizer
        self.warm_start = warm_start
        self._params_cache: dict = {}

    def run(self, model: QuboModel, rng=None, **opts) -> SampleSet:
        from repro.algorithms.qaoa import QAOA

        rng = ensure_rng(rng)
        qaoa = QAOA.from_qubo(model, num_layers=self.num_layers)
        key = (qubo_signature(model), self.num_layers) if self.warm_start else None
        initial = self._params_cache.get(key) if key is not None else None
        opt = qaoa.optimize(
            optimizer=self.optimizer,
            maxiter=self.maxiter,
            restarts=self.restarts,
            rng=rng,
            initial_params=initial,
        )
        if key is not None:
            self._params_cache[key] = opt.params
        samples = qaoa.sample(opt.params, shots=self.shots, rng=rng)
        samples.info.update(
            expectation=opt.value,
            qubits=qaoa.num_qubits,
            num_layers=self.num_layers,
            optimizer_evaluations=opt.evaluations,
            warm_started=initial is not None,
        )
        return samples


class VQEBackend(Backend):
    """Gate-model VQE with the hardware-efficient ansatz."""

    name = "vqe"

    def __init__(self, num_layers: int = 2, maxiter: int = 200, restarts: int = 2, shots: int = 512):
        self.num_layers = num_layers
        self.maxiter = maxiter
        self.restarts = restarts
        self.shots = shots

    def run(self, model: QuboModel, rng=None, **opts) -> SampleSet:
        from repro.algorithms.vqe import VQE

        rng = ensure_rng(rng)
        vqe = VQE.from_qubo(model, num_layers=self.num_layers)
        result = vqe.run(maxiter=self.maxiter, restarts=self.restarts, shots=self.shots, rng=rng)
        samples = result.samples
        samples.info.update(expectation=result.energy, qubits=vqe.num_qubits)
        return samples


class SamplerBackend(Backend):
    """Adapter for any object exposing ``solve(model, rng) -> SampleSet``.

    Lets ad-hoc samplers (custom schedules, experimental engines) ride the
    facade without registry ceremony.
    """

    def __init__(self, sampler, name: str = "sampler"):
        if not hasattr(sampler, "solve"):
            raise ReproError("sampler must expose solve(model, rng) -> SampleSet")
        self._sampler = sampler
        self.name = name

    def run(self, model: QuboModel, rng=None, **opts) -> SampleSet:
        return self._sampler.solve(model, rng=ensure_rng(rng))


class ClassicalBaselineBackend(Backend):
    """The per-domain classical reference, behind the same facade.

    Skips the QUBO entirely and asks the problem for its own best classical
    solution (exhaustive/DP/Hungarian/graph-colouring depending on domain),
    so quantum-vs-classical comparisons are one backend string apart.
    """

    name = "classical"
    solves_problem_directly = True

    def run(self, model: QuboModel, rng=None, **opts) -> SampleSet:
        raise ReproError("classical baseline solves the domain problem, not the QUBO")

    def solve_problem(self, problem, rng=None, **opts):
        return problem.classical_baseline(rng=ensure_rng(rng))


def _register_builtins() -> None:
    register_backend("bruteforce", BruteForceBackend)
    register_backend("tabu", TabuBackend)
    register_backend("sa", SimulatedAnnealingBackend)
    register_backend("sqa", SimulatedQuantumAnnealingBackend)
    register_backend("annealer", AnnealerBackend)
    register_backend("qaoa", QAOABackend)
    register_backend("vqe", VQEBackend)
    register_backend("classical", ClassicalBaselineBackend)


_register_builtins()
