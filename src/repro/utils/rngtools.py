"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts either a seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy);
:func:`ensure_rng` normalises all three into a ``Generator``.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(rng: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted input.

    Passing an existing generator returns it unchanged, so callers can
    thread a single generator through a whole experiment for reproducibility.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"expected seed, Generator or None, got {type(rng).__name__}")


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators."""
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
