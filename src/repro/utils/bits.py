"""Bit-manipulation helpers shared across the library.

Convention (see DESIGN.md): qubit 0 is the *leftmost* (most significant) bit
of a basis label.  The basis state ``|q0 q1 ... q(n-1)>`` therefore has the
integer index ``sum(q_j * 2**(n-1-j))``.
"""

from __future__ import annotations


def index_to_bits(index: int, n: int) -> tuple[int, ...]:
    """Return the ``n``-bit tuple ``(q0, ..., q(n-1))`` for a basis index.

    >>> index_to_bits(6, 3)
    (1, 1, 0)
    """
    if index < 0 or index >= (1 << n):
        raise ValueError(f"index {index} out of range for {n} bits")
    return tuple((index >> (n - 1 - j)) & 1 for j in range(n))


def bits_to_index(bits: tuple[int, ...] | list[int]) -> int:
    """Return the basis index for a bit tuple ``(q0, ..., q(n-1))``.

    >>> bits_to_index((1, 1, 0))
    6
    """
    index = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bits must be 0 or 1, got {bit!r}")
        index = (index << 1) | bit
    return index


def index_to_bitstring(index: int, n: int) -> str:
    """Return the ``n``-character bitstring label for a basis index.

    >>> index_to_bitstring(6, 3)
    '110'
    """
    return "".join(str(b) for b in index_to_bits(index, n))


def bitstring_to_index(bitstring: str) -> int:
    """Return the basis index for a bitstring label such as ``'110'``."""
    if not bitstring or any(c not in "01" for c in bitstring):
        raise ValueError(f"invalid bitstring {bitstring!r}")
    return int(bitstring, 2)


def parity(value: int) -> int:
    """Return the parity (0 or 1) of the set bits of ``value``.

    >>> parity(0b1011)
    1
    """
    return bin(value).count("1") & 1
