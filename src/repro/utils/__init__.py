"""Shared utilities: bit manipulation, RNG handling, ASCII report tables."""

from repro.utils.bits import (
    bits_to_index,
    bitstring_to_index,
    index_to_bits,
    index_to_bitstring,
    parity,
)
from repro.utils.rngtools import ensure_rng
from repro.utils.tables import format_table

__all__ = [
    "bits_to_index",
    "bitstring_to_index",
    "index_to_bits",
    "index_to_bitstring",
    "parity",
    "ensure_rng",
    "format_table",
]
