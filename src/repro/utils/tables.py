"""Minimal ASCII table formatting for benchmark reports.

The benchmark harness prints paper-style result tables; this module renders
them without external dependencies.
"""

from __future__ import annotations

from typing import Any, Sequence


def _render_cell(value: Any, floatfmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
    floatfmt: str = ".4g",
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table."""
    rendered = [[_render_cell(v, floatfmt) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
