"""Content-addressed result caching for the execution engine.

A :class:`ResultCache` memoises finished :class:`~repro.api.result.SolveResult`
objects keyed on ``(QUBO fingerprint, backend, opts, seed)``.  Because the
fingerprint is a canonical content hash (see
:meth:`repro.qubo.model.QuboModel.fingerprint`) and the seed pins the RNG
stream, a hit is byte-equivalent to re-running the solve — which is what
lets the engine skip dispatch entirely on repeated workloads.

Two storage tiers:

* an in-memory LRU of pickled blobs (pickling on ``put`` / unpickling on
  ``get`` gives every caller an independent copy, so mutating a returned
  result can never corrupt the cache);
* an optional on-disk store (one file per key under ``directory``) so
  worker *processes* and later sessions share hits.

Cache hits must not perturb the RNG stream of neighbouring batch items.
The engine guarantees this structurally: per-item child seeds are derived
from the batch seed *before* any cache lookup, so skipping a solve never
shifts what the other items draw.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path

from repro.exceptions import ReproError


def make_cache_key(fingerprint: str, backend_key: str, opts_key: str, seed: int) -> str:
    """Flatten the ``(fingerprint, backend, opts, seed)`` tuple into one hex key."""
    blob = "\x1f".join((fingerprint, backend_key, opts_key, str(int(seed))))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """LRU result store, optionally backed by an on-disk directory.

    Args:
        maxsize: In-memory entry cap; least-recently-used entries are
            evicted first.  Disk entries are never evicted by this cap.
        directory: Optional path for the cross-process tier.  Created on
            first ``put``.  Safe for concurrent writers: files are written
            to a temp name then atomically renamed.
    """

    def __init__(self, maxsize: int = 1024, directory: "str | os.PathLike | None" = None):
        if maxsize < 1:
            raise ReproError("ResultCache maxsize must be >= 1")
        self.maxsize = maxsize
        self.directory = Path(directory) if directory is not None else None
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # -- core protocol ---------------------------------------------------------

    def get(self, key: str):
        """Return a fresh copy of the cached result, or ``None`` on a miss.

        A disk entry that fails to unpickle (torn by a crash mid-write of a
        pre-atomic cache version, truncated by a full disk, or corrupted
        externally) is treated as a miss and evicted from both tiers — a
        damaged entry must never surface as a result, and dropping it lets
        the next ``put`` heal the cache.
        """
        from_disk = False
        with self._lock:
            blob = self._entries.get(key)
            if blob is not None:
                self._entries.move_to_end(key)
        if blob is None and self.directory is not None:
            path = self._path(key)
            try:
                blob = path.read_bytes()
            except OSError:
                blob = None
            from_disk = blob is not None
        if blob is not None:
            try:
                value = pickle.loads(blob)
            except Exception:
                self._evict_corrupt(key)
                blob = None
        if blob is not None and from_disk:
            with self._lock:
                self._store_memory(key, blob)
        with self._lock:
            if blob is None:
                self.misses += 1
                return None
            self.hits += 1
        return value

    def put(self, key: str, result) -> None:
        """Store ``result`` under ``key`` (overwrites an existing entry).

        The disk tier is written crash- and race-safely: the blob goes to a
        uniquely named temp file in the same directory (``mkstemp``, so
        concurrent writers — even threads sharing one PID — never collide),
        is flushed and fsynced, and only then atomically renamed over the
        final path.  Readers therefore see either the old complete entry or
        the new complete entry, never a torn one; a crash mid-write leaves
        at most a stray ``*.tmp`` file that no reader ever looks at.
        """
        blob = pickle.dumps(result)
        with self._lock:
            self._store_memory(key, blob)
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self._path(key)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=f".{key[:16]}-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_name, path)
            except BaseException:
                # Never leave a visible half-written entry: the final path is
                # untouched until os.replace, so only the temp needs cleanup.
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._entries:
                return True
        return self.directory is not None and self._path(key).exists()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every in-memory entry and reset hit/miss counters.

        Disk entries are left in place (they may be shared with other
        processes); delete the directory to purge them.
        """
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    @property
    def stats(self) -> dict:
        """``{"hits": ..., "misses": ..., "entries": ...}`` snapshot."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses, "entries": len(self._entries)}

    # -- internals -------------------------------------------------------------

    def _store_memory(self, key: str, blob: bytes) -> None:
        self._entries[key] = blob
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def _evict_corrupt(self, key: str) -> None:
        """Drop a damaged entry from both tiers (best-effort on disk)."""
        with self._lock:
            self._entries.pop(key, None)
        if self.directory is not None:
            try:
                os.unlink(self._path(key))
            except OSError:
                pass

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tier = f", dir={str(self.directory)!r}" if self.directory else ""
        return f"ResultCache({len(self)} entries, hits={self.hits}, misses={self.misses}{tier})"


#: Process-wide cache used when callers pass ``cache=True``.
_DEFAULT_CACHE: "ResultCache | None" = None
_DEFAULT_LOCK = threading.Lock()


def default_cache() -> ResultCache:
    """The lazily created process-global cache behind ``cache=True``."""
    global _DEFAULT_CACHE
    with _DEFAULT_LOCK:
        if _DEFAULT_CACHE is None:
            _DEFAULT_CACHE = ResultCache()
        return _DEFAULT_CACHE


def resolve_cache(spec) -> "ResultCache | None":
    """Normalise every accepted ``cache=`` spelling to a cache (or ``None``).

    ``None`` / ``False`` disable caching, ``True`` selects the process-global
    default, a path string / ``PathLike`` builds a disk-backed cache there,
    and a ready :class:`ResultCache` passes through.
    """
    if spec is None or spec is False:
        return None
    if spec is True:
        return default_cache()
    if isinstance(spec, ResultCache):
        return spec
    if isinstance(spec, (str, os.PathLike)):
        return ResultCache(directory=spec)
    raise ReproError(
        f"cache must be None/False, True, a path, or a ResultCache; got {type(spec).__name__}"
    )
