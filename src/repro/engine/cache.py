"""Content-addressed result caching for the execution engine.

A :class:`ResultCache` memoises finished :class:`~repro.api.result.SolveResult`
objects keyed on ``(QUBO fingerprint, backend, opts, seed)``.  Because the
fingerprint is a canonical content hash (see
:meth:`repro.qubo.model.QuboModel.fingerprint`) and the seed pins the RNG
stream, a hit is byte-equivalent to re-running the solve — which is what
lets the engine skip dispatch entirely on repeated workloads.

Three storage tiers:

* an in-memory LRU of pickled blobs (pickling on ``put`` / unpickling on
  ``get`` gives every caller an independent copy, so mutating a returned
  result can never corrupt the cache);
* an optional on-disk store (one file per key under ``directory``) so
  worker *processes* and later sessions share hits;
* an optional durable shared tier (a
  :class:`~repro.engine.store.SharedCacheTier` via ``store=``) — a
  SQLite-backed cross-process layer with LRU-by-last-access eviction
  under a byte budget and a structure-signature index that
  :meth:`ResultCache.prefetch` warms the memory LRU from.

Cache hits must not perturb the RNG stream of neighbouring batch items.
The engine guarantees this structurally: per-item child seeds are derived
from the batch seed *before* any cache lookup, so skipping a solve never
shifts what the other items draw.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path

from repro.exceptions import ReproError
from repro.obs import trace as obs


def make_cache_key(fingerprint: str, backend_key: str, opts_key: str, seed: int) -> str:
    """Flatten the ``(fingerprint, backend, opts, seed)`` tuple into one hex key."""
    blob = "\x1f".join((fingerprint, backend_key, opts_key, str(int(seed))))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """LRU result store, optionally backed by an on-disk directory.

    Args:
        maxsize: In-memory entry cap; least-recently-used entries are
            evicted first.  Disk entries are never evicted by this cap.
        directory: Optional path for the cross-process tier.  Created on
            first ``put``.  Safe for concurrent writers: files are written
            to a temp name then atomically renamed.
        store: Optional durable shared tier — a
            :class:`~repro.engine.store.SharedCacheTier` or the
            :class:`~repro.engine.store.EngineStore` that owns one.
            Consulted after memory and directory miss; every ``put``
            writes through with the entry's structure signature so
            :meth:`prefetch` can warm by shard.
    """

    def __init__(
        self,
        maxsize: int = 1024,
        directory: "str | os.PathLike | None" = None,
        store=None,
    ):
        if maxsize < 1:
            raise ReproError("ResultCache maxsize must be >= 1")
        self.maxsize = maxsize
        self.directory = Path(directory) if directory is not None else None
        if isinstance(store, (str, os.PathLike)):
            from repro.engine.store import engine_store  # circular at module level

            store = engine_store(store)
        # Accept an EngineStore for convenience; hold its cache facet.
        self.store = getattr(store, "cache", store)
        if self.store is not None and not hasattr(self.store, "get"):
            raise ReproError(
                "ResultCache store must be an EngineStore, a SharedCacheTier, or a "
                f"path; got {type(store).__name__}"
            )
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.store_hits = 0
        self._store_borrows = 0  # managed by repro.engine.store.store_bound_cache

    # -- core protocol ---------------------------------------------------------

    def get(self, key: str):
        """Return a fresh copy of the cached result, or ``None`` on a miss."""
        return self.lookup(key)[0]

    def lookup(self, key: str) -> "tuple[object | None, str | None]":
        """Like :meth:`get`, but also report which tier served the hit.

        Returns ``(value, tier)`` with ``tier`` one of ``"memory"``,
        ``"disk"``, ``"store"``, or ``None`` on a miss — the feed for
        ``cache.lookup`` trace spans and tiered cache telemetry.

        A lower-tier entry that fails to unpickle (torn by a crash
        mid-write of a pre-atomic cache version, truncated by a full disk,
        or corrupted externally) is treated as a miss and evicted from
        every tier — a damaged entry must never surface as a result, and
        dropping it lets the next ``put`` heal the cache.
        """
        tier = None
        with self._lock:
            blob = self._entries.get(key)
            if blob is not None:
                self._entries.move_to_end(key)
                tier = "memory"
        if blob is None and self.directory is not None:
            path = self._path(key)
            try:
                blob = path.read_bytes()
            except OSError:
                blob = None
            if blob is not None:
                tier = "disk"
        if blob is None and self.store is not None:
            blob = self.store.get(key)
            if blob is not None:
                tier = "store"
        if blob is not None:
            try:
                value = pickle.loads(blob)
            except Exception:
                self._evict_corrupt(key)
                blob = None
                tier = None
        if blob is not None and tier in ("disk", "store"):
            with self._lock:
                self._store_memory(key, blob)
        with self._lock:
            if blob is None:
                self.misses += 1
                return None, None
            self.hits += 1
            if tier == "store":
                self.store_hits += 1
        return value, tier

    def put(self, key: str, result, signature: "str | None" = None) -> None:
        """Store ``result`` under ``key`` (overwrites an existing entry).

        The disk tier is written crash- and race-safely: the blob goes to a
        uniquely named temp file in the same directory (``mkstemp``, so
        concurrent writers — even threads sharing one PID — never collide),
        is flushed and fsynced, and only then atomically renamed over the
        final path.  Readers therefore see either the old complete entry or
        the new complete entry, never a torn one; a crash mid-write leaves
        at most a stray ``*.tmp`` file that no reader ever looks at.

        ``signature`` (the producing shard's structure signature) is
        recorded by the durable shared tier so :meth:`prefetch` can warm
        the memory LRU by structure; the other tiers ignore it.
        """
        blob = pickle.dumps(result)
        with self._lock:
            self._store_memory(key, blob)
        if self.store is not None:
            self.store.put(key, blob, signature=signature)
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self._path(key)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=f".{key[:16]}-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_name, path)
            except BaseException:
                # Never leave a visible half-written entry: the final path is
                # untouched until os.replace, so only the temp needs cleanup.
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise

    def prefetch(self, signature: str) -> int:
        """Warm the memory LRU with every stored entry for one structure.

        The scheduler calls this the moment it routes a shard: any result
        a sibling process already solved for this structure signature is
        pulled out of the durable tier *before* dispatch, so the batch's
        cache lookups hit memory instead of SQLite.  Returns the number of
        entries warmed; a no-op (0) without a durable tier.  Prefetched
        entries do not touch the hit/miss counters — they are staging, not
        lookups.
        """
        if self.store is None or signature is None:
            return 0
        with obs.span("store.prefetch", signature=signature) as prefetch_span:
            entries = self.store.entries_for(signature)
            with self._lock:
                for key, blob in entries:
                    self._store_memory(key, blob)
            prefetch_span.set(warmed=len(entries))
        return len(entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._entries:
                return True
        if self.directory is not None and self._path(key).exists():
            return True
        return self.store is not None and key in self.store

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every in-memory entry and reset hit/miss counters.

        Disk entries are left in place (they may be shared with other
        processes); delete the directory to purge them.
        """
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.store_hits = 0

    @property
    def stats(self) -> dict:
        """``{"hits", "misses", "store_hits", "entries"}`` snapshot.

        ``store_hits`` counts the subset of ``hits`` served by the durable
        shared tier — the cross-process reuse the benchmarks report.
        """
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "store_hits": self.store_hits,
                "entries": len(self._entries),
            }

    # -- internals -------------------------------------------------------------

    def _store_memory(self, key: str, blob: bytes) -> None:
        self._entries[key] = blob
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def _evict_corrupt(self, key: str) -> None:
        """Drop a damaged entry from every tier (best-effort off-memory)."""
        with self._lock:
            self._entries.pop(key, None)
        if self.directory is not None:
            try:
                os.unlink(self._path(key))
            except OSError:
                pass
        if self.store is not None:
            self.store.evict(key)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tier = f", dir={str(self.directory)!r}" if self.directory else ""
        return f"ResultCache({len(self)} entries, hits={self.hits}, misses={self.misses}{tier})"


#: Process-wide cache used when callers pass ``cache=True``.
_DEFAULT_CACHE: "ResultCache | None" = None
_DEFAULT_LOCK = threading.Lock()


def default_cache() -> ResultCache:
    """The lazily created process-global cache behind ``cache=True``."""
    global _DEFAULT_CACHE
    with _DEFAULT_LOCK:
        if _DEFAULT_CACHE is None:
            _DEFAULT_CACHE = ResultCache()
        return _DEFAULT_CACHE


def resolve_cache(spec) -> "ResultCache | None":
    """Normalise every accepted ``cache=`` spelling to a cache (or ``None``).

    ``None`` / ``False`` disable caching, ``True`` selects the process-global
    default, a path string / ``PathLike`` builds a disk-backed cache there,
    and a ready :class:`ResultCache` passes through.
    """
    if spec is None or spec is False:
        return None
    if spec is True:
        return default_cache()
    if isinstance(spec, ResultCache):
        return spec
    if isinstance(spec, (str, os.PathLike)):
        return ResultCache(directory=spec)
    raise ReproError(
        f"cache must be None/False, True, a path, or a ResultCache; got {type(spec).__name__}"
    )
