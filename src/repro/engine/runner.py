"""Plan execution: the solve kernel, shard workers, caching, and racing.

This module owns the code that actually runs a compiled
:class:`~repro.engine.plan.ExecutionPlan`:

* :func:`solve_one` — the Problem -> QUBO -> Backend -> SolveResult kernel
  (moved here from the facade so every executor shares one definition);
* :func:`execute_plan` — cache lookup, shard dispatch through a pluggable
  executor, cache fill, and per-result engine metadata;
* :func:`run_portfolio` — several backends on one instance, optionally
  raced under a wall-clock deadline.

Cache semantics are **shard-atomic**: a shard's items are served from the
cache only when *every* item hits.  Item *k* of a shard is solved on
backend state built by items ``0..k-1`` (embedding searched with the
leader's RNG, warm-start angles from the leader's optimisation), so
skipping a cached prefix would hand later misses a fresh instance and
silently change their samples.  All-or-nothing keeps hits exactly
byte-equivalent to a re-run — and since per-item child seeds are fixed at
plan time, a hit never perturbs the RNG stream of neighbouring items.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import TYPE_CHECKING

import numpy as np

from repro.engine.cache import ResultCache, resolve_cache
from repro.engine.executors import get_executor
from repro.engine.plan import ExecutionPlan, compile_plan, single_solve_cache_key
from repro.exceptions import ReproError
from repro.obs import trace as obs
from repro.utils.rngtools import ensure_rng, spawn

if TYPE_CHECKING:  # pragma: no cover - type-only; runtime imports are lazy
    from repro.api.backends import Backend
    from repro.api.problem import Problem
    from repro.api.result import SolveResult


def _direct_result(problem, backend, rng, refine: bool, start: float, model,
                   formulate_s: float = 0.0) -> SolveResult:
    """Finish a direct-solve (no QUBO sampling) run; energy is NaN by convention."""
    from repro.api.result import SolveResult

    solve_t0 = time.perf_counter()
    solution = backend.solve_problem(problem, rng=rng)
    solve_s = time.perf_counter() - solve_t0
    if refine:
        solution = problem.refine(solution)
    return SolveResult(
        problem=problem.name,
        method=backend.name,
        solution=solution,
        objective=problem.evaluate(solution),
        energy=math.nan,
        wall_time=time.perf_counter() - start,
        num_variables=model.num_variables,
        info={
            "solver": backend.name,
            "timings": {"formulate_time": formulate_s, "solve_time": solve_s},
        },
    )


def _sampled_result(problem, backend, samples, refine: bool, top_k: int, start: float, model,
                    formulate_s: float = 0.0, solve_s: float = 0.0) -> SolveResult:
    """Decode/refine the ``top_k`` lowest-energy samples, keep the best."""
    from repro.api.result import SolveResult

    best_solution = None
    best_objective = math.inf
    for sample in samples.truncate(max(top_k, 1)):
        solution = problem.decode(sample.bits)
        if refine:
            solution = problem.refine(solution)
        objective = problem.evaluate(solution)
        if objective < best_objective:
            best_objective = objective
            best_solution = solution
    info = dict(samples.info)
    info["timings"] = {"formulate_time": formulate_s, "solve_time": solve_s}
    return SolveResult(
        problem=problem.name,
        method=backend.name,
        solution=best_solution,
        objective=best_objective,
        energy=samples.best.energy,
        wall_time=time.perf_counter() - start,
        num_variables=model.num_variables,
        info=info,
    )


def solve_one(problem: Problem, backend: Backend, rng, refine: bool, top_k: int) -> SolveResult:
    """Solve one problem on one backend instance (the pipeline kernel).

    Direct-solve backends (``classical``) bypass QUBO *sampling* but still
    report ``num_variables`` from the problem's cached formulation, so
    result rows stay comparable across backends; their ``energy`` is NaN by
    convention (see :class:`~repro.api.result.SolveResult`).

    Every result carries ``info["timings"]`` — ``formulate_time`` (the
    ``to_qubo`` call; near zero when the adapter's cached formulation is
    reused, e.g. after plan compile already formulated) and ``solve_time``
    (backend sampling / direct solve).  Decode/refine/evaluate is the
    remainder of ``wall_time``.
    """
    start = time.perf_counter()
    model = problem.to_qubo()
    formulate_s = time.perf_counter() - start
    if backend.solves_problem_directly:
        return _direct_result(problem, backend, rng, refine, start, model, formulate_s)
    solve_t0 = time.perf_counter()
    samples = backend.run(model, rng=rng)
    solve_s = time.perf_counter() - solve_t0
    return _sampled_result(
        problem, backend, samples, refine, top_k, start, model, formulate_s, solve_s
    )


async def solve_one_async(
    problem: Problem, backend: Backend, rng, refine: bool, top_k: int, offload=None
) -> SolveResult:
    """Coroutine twin of :func:`solve_one` for ``supports_async`` backends.

    Awaits :meth:`~repro.api.backends.Backend.run_async` instead of calling
    ``run``; everything around the sampling step (formulation, decode,
    refine, evaluation) is byte-for-byte the same code, so an async backend
    that honours the run/run_async equivalence contract yields identical
    results on every executor.

    ``offload`` is an optional async callable (``thunk -> awaitable``) that
    runs the CPU segments — formulation, decode/refine/evaluation — off the
    event loop.  The async executor passes its bounded thread pool here so
    many in-flight shards never single-thread their post-processing on the
    loop; ``None`` runs those segments inline.
    """

    async def cpu(thunk):
        if offload is None:
            return thunk()
        return await offload(thunk)

    start = time.perf_counter()
    model = await cpu(problem.to_qubo)
    formulate_s = time.perf_counter() - start
    if backend.solves_problem_directly:
        return await cpu(
            lambda: _direct_result(problem, backend, rng, refine, start, model, formulate_s)
        )
    solve_t0 = time.perf_counter()
    samples = await backend.run_async(model, rng=rng)
    solve_s = time.perf_counter() - solve_t0
    return await cpu(
        lambda: _sampled_result(
            problem, backend, samples, refine, top_k, start, model, formulate_s, solve_s
        )
    )


# -- shard execution --------------------------------------------------------


def _shard_payload(plan: ExecutionPlan, shard_items, executor_name: str) -> dict:
    signatures = plan.meta.get("shard_signatures") or []
    shard = shard_items[0].shard
    return {
        "shard": shard,
        "shard_size": len(shard_items),
        "signature": signatures[shard] if shard < len(signatures) else None,
        "indices": [i.index for i in shard_items],
        "problems": [i.problem for i in shard_items],
        "seeds": [i.seed for i in shard_items],
        "fingerprints": [i.fingerprint for i in shard_items],
        "labels": [i.label for i in shard_items],
        "backend_name": plan.backend_name,
        "backend_opts": plan.backend_opts,
        "backend_instance": plan.backend_instance,
        "refine": plan.refine,
        "top_k": plan.top_k,
        "executor": executor_name,
        # Picklable trace context: thread workers don't inherit contextvars
        # and process workers share nothing, so parentage rides the payload.
        "trace": obs.current_context(),
    }


def _engine_info(payload: dict, pos: int, seed: int, fingerprint: str) -> dict:
    info = {
        "shard": payload["shard"],
        "shard_pos": pos,
        "shard_size": payload["shard_size"],
        "signature": payload.get("signature"),
        "executor": payload["executor"],
        "seed": seed,
        "fingerprint": fingerprint[:16],
        "cache_hit": False,
    }
    labels = payload.get("labels") or []
    if pos < len(labels) and labels[pos] is not None:
        info["label"] = labels[pos]
    return info


def _stamp_engine_info(result, payload: dict, pos: int, seed: int, fingerprint: str) -> None:
    """Attach ``info["engine"]`` including the wall-time split.

    ``formulate_time``/``solve_time`` come from the kernel's
    ``info["timings"]``; ``cache_time`` (the shard's cache-probe seconds)
    is stamped by :func:`execute_plans` once the dispatch returns — workers
    never see the cache.
    """
    engine = _engine_info(payload, pos, seed, fingerprint)
    timings = result.info.get("timings") or {}
    engine["formulate_time"] = timings.get("formulate_time", 0.0)
    engine["solve_time"] = timings.get("solve_time", 0.0)
    engine["cache_time"] = 0.0
    result.info["engine"] = engine


def _shard_tier(tiers: list) -> "str | None":
    """The slowest tier a shard-atomic hit touched (store > disk > memory)."""
    for tier in ("store", "disk", "memory"):
        if tier in tiers:
            return tier
    return None


def _resolve_payload_backend(payload: dict):
    from repro.api.backends import get_backend

    if payload["backend_name"] is not None:
        return get_backend(payload["backend_name"], **payload["backend_opts"])
    return payload["backend_instance"]


def _begin_shard_span(tracer, payload: dict, backend):
    if tracer is None:
        return None
    return tracer.begin(
        "engine.shard",
        parent=payload.get("trace"),
        shard=payload["shard"],
        shard_size=payload["shard_size"],
        signature=payload.get("signature"),
        backend=backend.name,
        executor=payload["executor"],
    )


def _begin_solve_span(tracer, shard_span, payload: dict, seed: int, fp: str, index: int):
    if tracer is None:
        return None
    return tracer.begin(
        "engine.solve",
        parent=shard_span,
        shard=payload["shard"],
        index=index,
        seed=seed,
        fingerprint=fp[:16],
    )


def _end_solve_span(tracer, span, result) -> None:
    """Close a per-item span and stamp its ids as the result's join key."""
    if tracer is None:
        return
    tracer.end(span)
    result.info["trace"] = {"trace_id": span["trace_id"], "span_id": span["span_id"]}


def _run_shard_items(backend, payload: dict) -> dict:
    """Run a shard's items in order on an already-resolved backend instance.

    Items run in shard order on the shared instance, so signature-keyed
    backend caches (embeddings, warm-start angles) amortise across the
    shard exactly as they did on the old single-instance batch path.

    Returns ``{"items": [(index, result), ...], "spans": [...]}`` — spans
    collected worker-side when the payload carries a trace context, so the
    dispatching side can re-emit them regardless of executor.
    """
    tracer = obs.collector_for(payload.get("trace"))
    shard_span = _begin_shard_span(tracer, payload, backend)
    out = []
    for pos, (index, problem, seed, fp) in enumerate(
        zip(payload["indices"], payload["problems"], payload["seeds"], payload["fingerprints"])
    ):
        solve_span = _begin_solve_span(tracer, shard_span, payload, seed, fp, index)
        result = solve_one(
            problem, backend, np.random.default_rng(seed), payload["refine"], payload["top_k"]
        )
        _end_solve_span(tracer, solve_span, result)
        _stamp_engine_info(result, payload, pos, seed, fp)
        out.append((index, result))
    if tracer is not None:
        tracer.end(shard_span)
    return {"items": out, "spans": tracer.drain() if tracer is not None else []}


def _execute_shard(payload: dict) -> dict:
    """Resolve the shard's backend and run it; module-level for pickling."""
    return _run_shard_items(_resolve_payload_backend(payload), payload)


async def _execute_shard_async(payload: dict, backend, offload) -> dict:
    """Coroutine twin of :func:`_execute_shard` (same ordering, same state).

    Items still run strictly in shard order on the shared instance — the
    awaits overlap *across* shards on the event loop, never within one, so
    signature-keyed backend caches see the exact sequence the sync path
    produces.  CPU segments go through ``offload`` (the executor's bounded
    pool) so the event loop only ever holds the waits.
    """
    tracer = obs.collector_for(payload.get("trace"))
    shard_span = _begin_shard_span(tracer, payload, backend)
    out = []
    for pos, (index, problem, seed, fp) in enumerate(
        zip(payload["indices"], payload["problems"], payload["seeds"], payload["fingerprints"])
    ):
        solve_span = _begin_solve_span(tracer, shard_span, payload, seed, fp, index)
        result = await solve_one_async(
            problem, backend, np.random.default_rng(seed), payload["refine"], payload["top_k"],
            offload=offload,
        )
        _end_solve_span(tracer, solve_span, result)
        _stamp_engine_info(result, payload, pos, seed, fp)
        out.append((index, result))
    if tracer is not None:
        tracer.end(shard_span)
    return {"items": out, "spans": tracer.drain() if tracer is not None else []}


def _shard_coroutine(payload: dict, fallback):
    """``to_coroutine`` hook for the async executor.

    Resolves the shard's backend exactly once: sync-only backends are
    handed — already resolved — to the executor's ``fallback`` (a
    coroutine factory running a thunk on the bounded thread pool), while
    ``supports_async`` backends run on the event loop, awaiting their
    samples thread-free and borrowing the pool only for the CPU segments
    around each wait.
    """
    backend = _resolve_payload_backend(payload)
    if not getattr(backend, "supports_async", False):
        return fallback(lambda: _run_shard_items(backend, payload))
    return _execute_shard_async(payload, backend, fallback)


_execute_shard.to_coroutine = _shard_coroutine


def execute_plans(
    plans: "list[ExecutionPlan]",
    executor: str = "serial",
    cache: "ResultCache | bool | str | None" = None,
) -> "list[list[SolveResult]]":
    """Run several compiled plans as **one** dispatch wave; results per plan.

    All plans' uncached shards are handed to the executor together, so a
    scheduler-routed batch split across several backends parallelises
    exactly as widely as a single-backend batch would — per-plan sequential
    execution would serialise the backends and forfeit the wall-clock the
    executor was chosen for.  Seeds and shard membership are fixed per plan
    at compile time, so interleaving shards of different plans cannot
    perturb any result.

    Cache hits are taken shard-atomically (see module docstring); every
    result's ``info["engine"]`` records shard, position, structure
    signature, executor, seed, truncated fingerprint, and whether it was
    served from cache.
    """
    runner = get_executor(executor)
    shared_store = resolve_cache(cache)  # one cache (and stats) per wave
    with obs.span("engine.execute", executor=runner.name, plans=len(plans)) as exec_span:
        prepared = []
        flat_payloads: list = []
        payload_owner: list[int] = []
        payload_probe_s: list[float] = []
        for plan in plans:
            store = shared_store
            if store is not None and not plan.cacheable:
                store = None  # instance-backed plans carry opaque state; never cache
            results: list = [None] * len(plan.items)
            for shard_items in plan.shards():
                if not shard_items:
                    continue
                cached = None
                tiers: list = []
                probe_s = 0.0
                if store is not None:
                    with obs.span(
                        "cache.lookup",
                        shard=shard_items[0].shard,
                        items=len(shard_items),
                    ) as cache_span:
                        probe_t0 = time.perf_counter()
                        looked = [store.lookup(i.cache_key) for i in shard_items]
                        probe_s = time.perf_counter() - probe_t0
                        cached = [value for value, _ in looked]
                        tiers = [tier for _, tier in looked]
                        hit = all(value is not None for value in cached)
                        if not hit:
                            cached = None
                        cache_span.set(
                            hit=hit, tier=_shard_tier(tiers) if hit else None
                        )
                if cached is not None:
                    signatures = plan.meta.get("shard_signatures") or []
                    for pos, (item, result) in enumerate(zip(shard_items, cached)):
                        timings = result.info.get("timings") or {}
                        engine_info = result.info.setdefault("engine", {})
                        if item.label is not None:
                            engine_info["label"] = item.label
                        engine_info.update(
                            shard=item.shard,
                            shard_pos=pos,
                            shard_size=len(shard_items),
                            signature=signatures[item.shard] if item.shard < len(signatures) else None,
                            executor=runner.name,
                            seed=item.seed,
                            fingerprint=item.fingerprint[:16],
                            cache_hit=True,
                            cache_tier=tiers[pos],
                            formulate_time=timings.get("formulate_time", 0.0),
                            solve_time=timings.get("solve_time", 0.0),
                            cache_time=probe_s,
                        )
                        if cache_span.span_id is not None:
                            result.info["trace"] = {
                                "trace_id": cache_span.trace_id,
                                "span_id": cache_span.span_id,
                            }
                        results[item.index] = result
                else:
                    flat_payloads.append(_shard_payload(plan, shard_items, runner.name))
                    payload_owner.append(len(prepared))
                    payload_probe_s.append(probe_s)
            prepared.append((plan, results, store))

        for owner, probe_s, shard_out in zip(
            payload_owner, payload_probe_s, runner.run(_execute_shard, flat_payloads)
        ):
            obs.ingest(shard_out["spans"])
            results = prepared[owner][1]
            for index, result in shard_out["items"]:
                result.info["engine"]["cache_time"] = probe_s
                results[index] = result

        for plan, results, store in prepared:
            if store is not None:
                for item in plan.items:
                    result = results[item.index]
                    if not result.info.get("engine", {}).get("cache_hit"):
                        store.put(
                            item.cache_key, result, signature=plan.shard_signature(item.shard)
                        )
        exec_span.set(shards_dispatched=len(flat_payloads))
    return [results for _, results, _ in prepared]


def execute_plan(
    plan: ExecutionPlan,
    executor: str = "serial",
    cache: "ResultCache | bool | str | None" = None,
) -> list[SolveResult]:
    """Run one compiled plan; see :func:`execute_plans` for the semantics."""
    return execute_plans([plan], executor=executor, cache=cache)[0]


def solve_batch(
    problems,
    backend: "str | Backend" = "sa",
    seed: "int | None" = None,
    refine: bool = True,
    top_k: int = 8,
    executor: str = "serial",
    cache: "ResultCache | bool | str | None" = None,
    max_shard_size: "int | None" = None,
    backend_opts: "dict | None" = None,
    store=None,
    seeds=None,
    labels=None,
) -> list[SolveResult]:
    """Compile + execute in one call (the engine behind ``repro.solve_many``).

    With a durable ``store`` (a path, an
    :class:`~repro.engine.store.EngineStore`, or ``None`` + ``REPRO_STORE``),
    results flow through the store's shared cache tier and the batch's
    telemetry is recorded into the durable scoreboard at the batch
    boundary — so even unscheduled batches feed the routing knowledge a
    later :class:`~repro.engine.scheduler.AdaptiveScheduler` hydrates.

    ``seeds`` passes explicit per-item child seeds to the planner (see
    :func:`~repro.engine.plan.compile_plan`); ``seed`` is ignored when set.
    ``labels`` tags items for telemetry (``info["engine"]["label"]``)
    without affecting sharding, seeding, or cache keys.
    """
    from repro.engine.store import resolve_store, store_bound_cache

    store = resolve_store(store)
    with obs.span("engine.plan_compile") as plan_span:
        plan = compile_plan(
            problems,
            backend,
            seed=seed,
            refine=refine,
            top_k=top_k,
            backend_opts=backend_opts,
            max_shard_size=max_shard_size,
            seeds=seeds,
            labels=labels,
        )
        plan_span.set(items=len(plan.items), shards=plan.num_shards)
    with store_bound_cache(cache, store) as bound:
        results = execute_plan(plan, executor=executor, cache=bound)
    if store is not None:
        from repro.engine.store import record_best_effort

        record_best_effort(
            lambda: store.scoreboard.record_results(results), "batch telemetry record"
        )
    return results


def solve_single(
    problem: Problem,
    backend: Backend,
    backend_name: "str | None",
    backend_opts: dict,
    seed,
    refine: bool,
    top_k: int,
    cache: "ResultCache | bool | str | None" = None,
    store=None,
) -> SolveResult:
    """One solve with optional caching (the engine behind ``repro.solve``).

    Caching applies only when the backend was selected by name *and* the
    seed is an integer — a live Generator's position cannot be content-
    addressed, and an instance backend's caches make its output depend on
    call history.  The key uses an empty shard history, so it is shared
    with shard-leader batch items of the same fingerprint/opts/seed.

    A durable ``store`` adds its shared cache tier under the cache and
    records the solve's outcome into the durable scoreboard (keyed by the
    problem's structure signature) so single solves feed routing knowledge
    too.
    """
    from repro.engine.store import resolve_store, store_bound_cache

    durable = resolve_store(store)
    signature = None
    if durable is not None:
        from repro.api.problem import qubo_signature
        from repro.engine.plan import signature_key

        signature = signature_key(qubo_signature(problem.to_qubo()))
    with store_bound_cache(cache, durable) as cache_store:
        key = None
        if (
            cache_store is not None
            and backend_name is not None
            and isinstance(seed, (int, np.integer))
        ):
            key = single_solve_cache_key(
                problem.to_qubo().fingerprint(), backend_name, backend_opts, refine,
                top_k, int(seed),
            )
            with obs.span("cache.lookup", items=1) as cache_span:
                probe_t0 = time.perf_counter()
                hit, tier = cache_store.lookup(key)
                probe_s = time.perf_counter() - probe_t0
                cache_span.set(hit=hit is not None, tier=tier)
            if hit is not None:
                timings = hit.info.get("timings") or {}
                hit.info.setdefault("engine", {}).update(
                    cache_hit=True,
                    cache_tier=tier,
                    formulate_time=timings.get("formulate_time", 0.0),
                    solve_time=timings.get("solve_time", 0.0),
                    cache_time=probe_s,
                )
                if cache_span.span_id is not None:
                    hit.info["trace"] = {
                        "trace_id": cache_span.trace_id,
                        "span_id": cache_span.span_id,
                    }
                if durable is not None:
                    from repro.engine.store import record_best_effort

                    record_best_effort(
                        lambda: durable.scoreboard.record(
                            [("observe", hit.method, signature, hit.objective,
                              hit.wall_time, True)]
                        ),
                        "solve telemetry record",
                    )
                return hit
        with obs.span("engine.solve", backend=backend.name) as solve_span:
            result = solve_one(problem, backend, ensure_rng(seed), refine, top_k)
            if solve_span.span_id is not None:
                result.info["trace"] = {
                    "trace_id": solve_span.trace_id,
                    "span_id": solve_span.span_id,
                }
        if key is not None:
            timings = result.info.get("timings") or {}
            result.info.setdefault("engine", {}).update(
                cache_hit=False,
                formulate_time=timings.get("formulate_time", 0.0),
                solve_time=timings.get("solve_time", 0.0),
                cache_time=probe_s,
            )
            cache_store.put(key, result, signature=signature)
    if durable is not None:
        from repro.engine.store import record_best_effort

        record_best_effort(
            lambda: durable.scoreboard.record(
                [("observe", result.method, signature, result.objective,
                  result.wall_time, False)]
            ),
            "solve telemetry record",
        )
    return result


# -- portfolio racing -------------------------------------------------------


def run_portfolio(
    problem: Problem,
    backends,
    seed: "int | None" = None,
    refine: bool = True,
    top_k: int = 8,
    backend_opts: "dict | None" = None,
    deadline_s: "float | None" = None,
    store=None,
) -> SolveResult:
    """Race several backends on one instance; return the best finisher.

    Each contender gets an independent child RNG split from ``seed`` in
    contender order, so a deadline-free portfolio is reproducible as a
    whole.  With ``deadline_s`` set, contenders run concurrently in a
    thread pool and only those that finish inside the deadline compete
    (stragglers are abandoned, not interrupted — their entry is marked
    ``"deadline_exceeded"``); at least one contender is always awaited so
    the call never returns empty-handed.  Which contenders beat a wall-
    clock deadline is inherently machine-dependent, so deadline racing
    trades determinism for latency — leave ``deadline_s=None`` when exact
    reproducibility matters.
    """
    from repro.api.backends import Backend, get_backend

    backends = list(backends)
    if not backends:
        raise ReproError("portfolio needs at least one backend")
    opts_map = dict(backend_opts or {})
    names = {b for b in backends if isinstance(b, str)}
    unknown = set(opts_map) - names
    if unknown:
        raise ReproError(
            f"backend_opts for {sorted(unknown)} match no named backend in the portfolio"
        )

    contenders = []
    for b in backends:
        if isinstance(b, Backend):
            contenders.append((b.name, b))
        else:
            contenders.append((b, get_backend(b, **opts_map.get(b, {}))))
    rngs = spawn(ensure_rng(seed), len(contenders))

    def _run(idx: int) -> SolveResult:
        return solve_one(problem, contenders[idx][1], rngs[idx], refine, top_k)

    if deadline_s is None:
        results = [_run(i) for i in range(len(contenders))]
        entries = [
            {"method": r.method, "objective": r.objective, "wall_time": r.wall_time,
             "status": "completed"}
            for r in results
        ]
        completed = results
    else:
        pool = ThreadPoolExecutor(
            max_workers=len(contenders), thread_name_prefix="portfolio"
        )
        futures = {pool.submit(_run, i): i for i in range(len(contenders))}
        done, pending = wait(futures, timeout=deadline_s)
        if not done:
            done, pending = wait(futures, return_when=FIRST_COMPLETED)
        # Abandon stragglers: cancel queued work, never block on running threads.
        pool.shutdown(wait=False, cancel_futures=True)
        entries = [None] * len(contenders)
        completed = []
        errors = []
        for future in done:
            idx = futures[future]
            label = contenders[idx][0]
            exc = future.exception()
            if exc is not None:
                errors.append(exc)
                entries[idx] = {"method": label, "objective": math.nan,
                                "wall_time": math.nan, "status": "error"}
                continue
            r = future.result()
            completed.append(r)
            entries[idx] = {"method": r.method, "objective": r.objective,
                            "wall_time": r.wall_time, "status": "completed"}
        for future in pending:
            idx = futures[future]
            entries[idx] = {"method": contenders[idx][0], "objective": math.nan,
                            "wall_time": math.nan, "status": "deadline_exceeded"}
        if not completed:
            raise errors[0] if errors else ReproError("portfolio produced no results")

    best = min(completed, key=lambda r: r.objective)
    best.info["portfolio"] = entries
    best.info["portfolio_meta"] = {
        "deadline_s": deadline_s,
        "contenders": len(contenders),
        "completed": len(completed),
        "raced": deadline_s is not None,
    }
    from repro.engine.store import record_best_effort, resolve_store

    durable = resolve_store(store)
    if durable is not None:
        from repro.api.problem import qubo_signature
        from repro.engine.plan import signature_key

        record_best_effort(
            lambda: durable.scoreboard.record_portfolio(
                best, signature=signature_key(qubo_signature(problem.to_qubo()))
            ),
            "portfolio telemetry record",
        )
    return best
