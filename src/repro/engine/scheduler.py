"""Telemetry-driven adaptive shard scheduling.

The engine's executors answer *how* shards run; this module answers *where*.
A :class:`BackendScoreboard` keeps online per-``(backend, QUBO-structure)``
statistics — observed objective quality, wall latency, cache-hit rate — fed
by the ``info["engine"]`` and ``info["portfolio"]`` telemetry every engine
result already carries.  An :class:`AdaptiveScheduler` turns those stats
into routing decisions:

* :func:`solve_batch_scheduled` — the scheduler behind
  ``solve_many(..., scheduler=...)``: each shard of a batch is routed to
  the backend with the best expected quality-under-deadline for its
  structure, epsilon-greedy so colder backends keep getting sampled;
* :func:`run_portfolio_scheduled` — the scheduler behind
  ``solve_portfolio(..., scheduler=...)``: instead of racing *every*
  backend, the scoreboard ranks them and only the top-k race.

Routing happens **before** dispatch and the scoreboard updates **after**
the whole batch returns, so a scheduled batch stays deterministic for a
fixed ``(scheduler seed, scoreboard history)`` across serial / threads /
processes / async executors — exactly the engine's existing contract.
Mid-batch adaptation would tie routing to completion order and silently
break it, which is why the batch boundary is the observation boundary.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.engine.plan import ExecutionPlan, _assign_cache_keys, compile_plan, signature_key
from repro.engine.runner import execute_plans, run_portfolio
from repro.exceptions import ReproError
from repro.obs import trace as obs

if TYPE_CHECKING:  # pragma: no cover - type-only; runtime imports are lazy
    from repro.api.result import SolveResult


def expected_service_time(
    snapshot: "dict[str, dict]",
    backends: "Sequence[str] | None" = None,
    default: float = 0.25,
) -> float:
    """Expected wall seconds for one real solve, from a capacity snapshot.

    The admission-control read of :meth:`BackendScoreboard.
    capacity_snapshot`: averages the finite EWMA ``latency`` rows of the
    named ``backends`` (every backend in the snapshot when ``None``),
    falling back to ``default`` while the scoreboard is cold or the named
    backends have never completed a real solve.  This is the signal a
    ``Retry-After`` or a queue-drain estimate needs — cache hits never
    update EWMA latency, so the figure stays an honest per-solve cost.
    """
    names = snapshot.keys() if backends is None else backends
    latencies = []
    for name in names:
        row = snapshot.get(name)
        if row is None:
            continue
        latency = row.get("latency")
        if isinstance(latency, (int, float)) and math.isfinite(latency) and latency >= 0:
            latencies.append(float(latency))
    if not latencies:
        return float(default)
    return sum(latencies) / len(latencies)


@dataclass
class BackendStats:
    """Online statistics for one ``(backend, structure)`` pair.

    ``quality`` and ``latency`` are exponential moving averages so the
    scoreboard tracks drift (a congested hardware queue, a warmed cache)
    instead of averaging over stale history.  Latency is only updated by
    real solves — a cache hit keeps the *original* wall time and would
    otherwise double-count it.
    """

    count: int = 0
    quality: float = math.nan    #: EWMA of observed domain objectives (lower = better)
    latency: float = math.nan    #: EWMA of wall seconds per real (uncached) solve
    best_objective: float = math.inf
    cache_hits: int = 0
    timeouts: int = 0
    errors: int = 0

    def observe(self, objective: float, wall_time: float, alpha: float,
                cache_hit: bool = False) -> None:
        self.count += 1
        if cache_hit:
            self.cache_hits += 1
        if not math.isnan(objective):
            self.quality = objective if math.isnan(self.quality) else (
                (1.0 - alpha) * self.quality + alpha * objective
            )
            self.best_objective = min(self.best_objective, objective)
        if not cache_hit and not math.isnan(wall_time):
            self.latency = wall_time if math.isnan(self.latency) else (
                (1.0 - alpha) * self.latency + alpha * wall_time
            )

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "quality": self.quality,
            "latency": self.latency,
            "best_objective": self.best_objective,
            "cache_hit_rate": self.cache_hit_rate,
            "timeouts": self.timeouts,
            "errors": self.errors,
        }


class BackendScoreboard:
    """Per-``(backend, structure-signature)`` stats from engine telemetry.

    Keys are backend registry names crossed with the 16-hex structure keys
    the planner stamps into ``info["engine"]["signature"]`` (see
    :func:`~repro.engine.plan.signature_key`).  Every observation also
    updates a backend-global aggregate (signature ``None``) so routing has
    a fallback for structures the exact pair has never seen.

    With a durable store bound (``store=`` or :meth:`bind_store`), the
    scoreboard hydrates its statistics from the store on binding and keeps
    the raw observations it makes afterwards; :meth:`flush` replays them
    into the store — the same EWMA arithmetic in the same order, so for a
    single writer the stored statistics are byte-identical to the live
    ones and a freshly hydrated scoreboard routes exactly like the
    instance that produced it.
    """

    def __init__(self, alpha: float = 0.25, store=None):
        if not 0.0 < alpha <= 1.0:
            raise ReproError("scoreboard alpha must be in (0, 1]")
        self.alpha = alpha
        self._stats: "dict[tuple[str, str | None], BackendStats]" = {}
        self._lock = threading.Lock()
        self._store = None
        self._pending: list[tuple] = []
        if store is not None:
            self.bind_store(store)

    # -- durability ------------------------------------------------------------

    @property
    def store(self):
        """The bound :class:`~repro.engine.store.EngineStore`, if any."""
        return self._store

    def bind_store(self, store, hydrate: bool = True) -> None:
        """Bind a durable store, hydrating stats the scoreboard lacks.

        Hydration never overwrites a pair already observed in memory (live
        statistics are fresher than the checkpoint they were hydrated
        from).  Re-binding the same store is a no-op; binding a different
        one is an error — the pending observations would be replayed into
        a store that never saw the baseline they extend.
        """
        from repro.engine.store import resolve_store

        resolved = resolve_store(store)
        if resolved is None:
            return
        with self._lock:
            if self._store is not None:
                # Two handles on one file are the same store; keep the bound
                # handle (its pending observations extend its baseline).
                if self._store.path.resolve() == resolved.path.resolve():
                    return
                raise ReproError("scoreboard is already bound to a different EngineStore")
            self._store = resolved
            if hydrate:
                for key, stats in resolved.scoreboard.load().items():
                    self._stats.setdefault(key, stats)

    def flush(self) -> int:
        """Replay observations made since the last flush into the store.

        Returns the number of observations written (0 when no store is
        bound or nothing is pending).  Called at batch boundaries by the
        scheduled execution paths; a crash before a flush loses at most
        that batch's delta, never the store's integrity.  A *failed* write
        (disk full, lock timeout) re-queues the drained observations, so a
        later flush retries them instead of losing the delta.
        """
        with self._lock:
            store, pending = self._store, self._pending
            self._pending = []
        if store is None or not pending:
            return 0
        try:
            with obs.span("store.checkpoint", observations=len(pending)):
                return store.scoreboard.record(pending, alpha=self.alpha)
        except BaseException:
            with self._lock:
                self._pending = pending + self._pending
            raise

    def discard_pending(self) -> int:
        """Drop unflushed observations (the ``store=False`` opt-out).

        The live statistics keep them — only the durable replay log is
        emptied, so the next :meth:`flush` writes nothing for the
        discarded batch.  Returns how many observations were dropped.

        The log is shared, so this drops *everything* unflushed.  That is
        exact under the scheduler's contract — a scheduler is driven by
        one call at a time (concurrent scheduled calls would already race
        its routing RNG and break determinism), and every scheduled call
        flushes at its batch boundary, so the pending log only ever holds
        the current call's delta.
        """
        with self._lock:
            dropped = len(self._pending)
            self._pending = []
        return dropped

    # -- feeding ---------------------------------------------------------------

    def observe(self, backend: str, signature: "str | None", objective: float,
                wall_time: float, cache_hit: bool = False) -> None:
        """Record one solve outcome (the low-level feed)."""
        with self._lock:
            for key in {(backend, signature), (backend, None)}:
                self._stats.setdefault(key, BackendStats()).observe(
                    objective, wall_time, self.alpha, cache_hit=cache_hit
                )
            if self._store is not None:
                self._pending.append(
                    ("observe", backend, signature, objective, wall_time, cache_hit)
                )

    def observe_result(self, result: "SolveResult") -> None:
        """Feed one engine-executed result from its ``info["engine"]`` telemetry."""
        engine = result.info.get("engine", {})
        self.observe(
            result.method,
            engine.get("signature"),
            result.objective,
            result.wall_time,
            cache_hit=bool(engine.get("cache_hit", False)),
        )

    def observe_portfolio(self, result: "SolveResult", signature: "str | None" = None) -> None:
        """Feed every contender of an ``info["portfolio"]`` breakdown.

        The status → observation mapping lives in one place —
        :func:`~repro.engine.store.portfolio_observations` — shared with
        the durable :class:`~repro.engine.store.ScoreboardStore`, so live
        and stored statistics apply identical semantics (completed →
        quality + latency; deadline-exceeded → timeout with a latency
        floor at the deadline; error → seen-but-ranked-last).
        """
        from repro.engine.store import portfolio_observations

        for op in portfolio_observations(result, signature=signature):
            if op[0] == "observe":
                self.observe(op[1], op[2], op[3], op[4], cache_hit=op[5])
                continue
            kind, backend, sig = op[0], op[1], op[2]
            deadline = op[3] if kind == "timeout" else None
            with self._lock:
                for key in {(backend, sig), (backend, None)}:
                    stats = self._stats.setdefault(key, BackendStats())
                    if kind == "error":
                        stats.errors += 1
                    else:
                        stats.timeouts += 1
                        if deadline is not None:
                            stats.observe(math.nan, deadline, self.alpha)
                if self._store is not None:
                    self._pending.append(op)

    # -- reading ---------------------------------------------------------------

    def stats(self, backend: str, signature: "str | None") -> "BackendStats | None":
        """Exact-pair stats, falling back to the backend-global aggregate."""
        with self._lock:
            found = self._stats.get((backend, signature))
            if found is None and signature is not None:
                found = self._stats.get((backend, None))
            return found

    def seen(self, backend: str) -> bool:
        """Whether this backend has been observed at all (any structure)."""
        with self._lock:
            return (backend, None) in self._stats

    def snapshot(self) -> dict:
        """``{(backend, signature): stats-dict}`` copy for telemetry/tests."""
        with self._lock:
            return {key: stats.as_dict() for key, stats in self._stats.items()}

    def capacity_snapshot(self) -> "dict[str, dict]":
        """Per-backend capacity summary: the admission-control read model.

        One row per backend, from the backend-global aggregate (signature
        ``None``) plus a count of distinct structures observed::

            {"sa": {"count": 37, "quality": ..., "latency": ...,
                    "best_objective": ..., "cache_hit_rate": 0.4,
                    "timeouts": 0, "errors": 0, "timeout_rate": 0.0,
                    "error_rate": 0.0, "structures": 5}, ...}

        ``latency`` is the EWMA wall seconds per real (uncached) solve —
        the expected-service-time signal a capacity model or readiness
        probe needs; ``timeout_rate``/``error_rate`` are per observed
        solve.  Values are plain floats/ints (NaN where never observed),
        safe to serialise after NaN-scrubbing.  This is the queryable
        seam the service's ``/metrics`` and ``/readyz`` endpoints read,
        and the one the ROADMAP's admission-control item builds on.
        """
        with self._lock:
            rows: dict[str, dict] = {}
            structures: dict[str, int] = {}
            for (backend, signature), stats in self._stats.items():
                if signature is None:
                    rows[backend] = stats.as_dict()
                else:
                    structures[backend] = structures.get(backend, 0) + 1
            for backend, row in rows.items():
                count = row["count"]
                row["timeout_rate"] = row["timeouts"] / count if count else 0.0
                row["error_rate"] = row["errors"] / count if count else 0.0
                row["structures"] = structures.get(backend, 0)
            return rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            pairs = len(self._stats)
        return f"BackendScoreboard({pairs} (backend, structure) pairs, alpha={self.alpha})"


@dataclass
class RoutingDecision:
    """Why a shard went where it went (stamped into result telemetry)."""

    backend: str
    mode: str                      #: "cold" | "explore" | "exploit"
    signature: "str | None"
    candidates: list = field(default_factory=list)


class AdaptiveScheduler:
    """Epsilon-greedy, deadline-aware backend router over a scoreboard.

    Exploitation ranks candidates by expected quality for the shard's
    structure — candidates whose expected latency exceeds ``deadline_s``
    are demoted behind every deadline-feasible one (but never dropped: if
    *all* candidates blow the deadline the fastest is still picked, so no
    shard is ever starved).  Quality ties within ``quality_tol`` (relative)
    break toward lower latency.  Exploration has two triggers: a backend
    the scoreboard has never seen anywhere is sampled first ("cold"), and
    an ``epsilon`` draw routes uniformly at random so the scoreboard keeps
    re-measuring backends that looked bad early ("explore").

    The scheduler owns a seeded RNG, so for a fixed seed and observation
    history its routing is deterministic — which keeps scheduled batches
    reproducible across executors.

    ``store=`` (a path or :class:`~repro.engine.store.EngineStore`) makes
    the routing knowledge durable: the scoreboard hydrates from the store
    on construction — so a fresh scheduler starts warm and, for the same
    stored history, routes exactly like the long-lived instance that wrote
    it — and the scheduled execution paths flush new observations back at
    every batch boundary.
    """

    def __init__(
        self,
        scoreboard: "BackendScoreboard | None" = None,
        epsilon: float = 0.1,
        seed: int = 0,
        deadline_s: "float | None" = None,
        race_top_k: int = 2,
        alpha: float = 0.25,
        quality_tol: float = 1e-9,
        store=None,
    ):
        if not 0.0 <= epsilon <= 1.0:
            raise ReproError("epsilon must be in [0, 1]")
        if race_top_k < 1:
            raise ReproError("race_top_k must be >= 1")
        if scoreboard is not None and store is not None:
            scoreboard.bind_store(store)
        self.scoreboard = (
            scoreboard if scoreboard is not None else BackendScoreboard(alpha=alpha, store=store)
        )
        self.epsilon = epsilon
        self.deadline_s = deadline_s
        self.race_top_k = race_top_k
        self.quality_tol = quality_tol
        self._rng = np.random.default_rng(seed)

    # -- routing ---------------------------------------------------------------

    def rank(self, signature: "str | None", candidates: Sequence[str]) -> list[str]:
        """Candidates best-first for this structure (pure exploitation view).

        Never-seen backends lead (optimism under uncertainty: they must be
        measured before they can be beaten), then deadline-feasible ones by
        quality (latency breaks near-ties), then deadline-breakers by
        latency.
        """
        names = _candidate_names(candidates)
        cold = [n for n in names if not self.scoreboard.seen(n)]
        scored = []
        for name in names:
            if name in cold:
                continue
            stats = self.scoreboard.stats(name, signature)
            quality = stats.quality if stats is not None else math.inf
            latency = stats.latency if stats is not None else math.nan
            if math.isnan(latency):
                # Quality-only observations (e.g. a warm cache: hits carry
                # no latency signal) — fall back to the backend-global
                # aggregate rather than assuming "instantaneous".
                fallback = self.scoreboard.stats(name, None)
                if fallback is not None:
                    latency = fallback.latency
            if math.isnan(quality):
                quality = math.inf
            if math.isnan(latency):
                # Still unknown: pessimistic. Never deadline-feasible on
                # faith, and last in any quality-tie latency tiebreak.
                latency = math.inf
            feasible = self.deadline_s is None or latency <= self.deadline_s
            scored.append((name, feasible, quality, latency))
        ordered = []
        for feasible_group in (True, False):
            group = [s for s in scored if s[1] is feasible_group]
            if not group:
                continue
            best_quality = min(s[2] for s in group)
            tol = self.quality_tol * (1.0 + abs(best_quality))
            tied = sorted((s for s in group if s[2] <= best_quality + tol),
                          key=lambda s: (s[3], s[0]))
            rest = sorted((s for s in group if s[2] > best_quality + tol),
                          key=lambda s: (s[2], s[3], s[0]))
            ordered.extend(s[0] for s in tied + rest)
        return cold + ordered

    def choose(self, signature: "str | None", candidates: Sequence[str]) -> RoutingDecision:
        """Pick one backend for a shard of this structure (epsilon-greedy)."""
        names = _candidate_names(candidates)
        cold = [n for n in names if not self.scoreboard.seen(n)]
        if cold:
            pick = cold[int(self._rng.integers(len(cold)))]
            return RoutingDecision(pick, "cold", signature, names)
        if self.epsilon > 0.0 and self._rng.random() < self.epsilon:
            pick = names[int(self._rng.integers(len(names)))]
            return RoutingDecision(pick, "explore", signature, names)
        return RoutingDecision(self.rank(signature, names)[0], "exploit", signature, names)

    # -- feeding (delegates) ---------------------------------------------------

    def observe_batch(self, results: Iterable["SolveResult"]) -> None:
        for result in results:
            self.scoreboard.observe_result(result)

    def observe_portfolio(self, result: "SolveResult", signature: "str | None" = None) -> None:
        self.scoreboard.observe_portfolio(result, signature=signature)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdaptiveScheduler(epsilon={self.epsilon}, deadline_s={self.deadline_s}, "
            f"race_top_k={self.race_top_k}, {self.scoreboard!r})"
        )


def _candidate_names(candidates: Sequence) -> list[str]:
    names = []
    for c in candidates:
        if not isinstance(c, str):
            raise ReproError(
                "adaptive scheduling routes by registry name; pass backend names, "
                f"not {type(c).__name__} instances (the scoreboard keys on names)"
            )
        if c not in names:
            names.append(c)
    if not names:
        raise ReproError("adaptive scheduling needs at least one candidate backend")
    return names


def _validated_opts_map(backend_opts: "dict | None", names: Sequence[str]) -> dict:
    """Portfolio-style per-backend opts, checked against the candidate list."""
    opts_map = dict(backend_opts or {})
    unknown = set(opts_map) - set(names)
    if unknown:
        raise ReproError(
            f"backend_opts for {sorted(unknown)} match no candidate backend"
        )
    return opts_map


# -- scheduled batch execution ----------------------------------------------


def solve_batch_scheduled(
    problems,
    backends: Sequence[str],
    scheduler: AdaptiveScheduler,
    seed: "int | None" = None,
    refine: bool = True,
    top_k: int = 8,
    executor: str = "serial",
    cache=None,
    max_shard_size: "int | None" = None,
    backend_opts: "dict | None" = None,
    store=None,
    seeds=None,
    labels=None,
) -> list:
    """Route each shard of a batch to a scoreboard-chosen backend.

    The batch is compiled once (seeds split in batch order, shards grouped
    by structure — identical to the unscheduled path), every shard is routed
    up front via :meth:`AdaptiveScheduler.choose`, and one sub-plan per
    chosen backend executes on the requested executor.  Item seeds are the
    compiled ones regardless of routing, so two runs with equal scheduler
    state solve every item identically no matter the executor.  When the
    whole batch has returned, each result is fed back to the scoreboard —
    including the portfolio-style telemetry stamped into
    ``info["engine"]["scheduler"]``.

    ``backend_opts`` is portfolio-style: per-backend factory options keyed
    by registry name, e.g. ``{"sa": {"num_reads": 64}}``.  ``seeds`` passes
    explicit per-item child seeds to the planner (see
    :func:`~repro.engine.plan.compile_plan`); ``seed`` is ignored when set.
    ``labels`` tags items for telemetry exactly as on the unscheduled path.

    With a durable ``store`` (resolved through
    :func:`~repro.engine.store.resolve_store`, so ``REPRO_STORE`` applies),
    the scheduler's scoreboard is bound to it (hydrating any pairs it
    lacks), routed shards' structure signatures are prefetched from the
    shared cache tier into the in-memory LRU before dispatch, and the
    batch's observations are flushed back at the batch boundary.  An
    explicit ``store=False`` suppresses durable recording for this call
    even when the scheduler's scoreboard is store-bound: the batch's
    observations still feed the live scoreboard but are discarded instead
    of flushed.
    """
    from repro.engine.store import resolve_store, store_bound_cache

    durable_off = store is False
    store = resolve_store(store)
    if store is not None:
        scheduler.scoreboard.bind_store(store)

    names = _candidate_names(backends)
    opts_map = _validated_opts_map(backend_opts, names)

    with obs.span("engine.plan_compile") as plan_span:
        plan = compile_plan(
            problems,
            names[0],
            seed=seed,
            refine=refine,
            top_k=top_k,
            backend_opts=opts_map.get(names[0], {}),
            max_shard_size=max_shard_size,
            seeds=seeds,
            labels=labels,
        )
        plan_span.set(items=len(plan.items), shards=plan.num_shards)
    signatures = plan.meta["shard_signatures"]
    shards = plan.shards()

    decisions = []
    for shard_id in range(len(shards)):
        with obs.span(
            "scheduler.route", shard=shard_id, signature=signatures[shard_id]
        ) as route_span:
            decision = scheduler.choose(signatures[shard_id], names)
            route_span.set(backend=decision.backend, mode=decision.mode)
        decisions.append(decision)

    # Build every backend's sub-plan first, then execute them as ONE
    # dispatch wave: the executor sees all routed shards together, so a
    # cold or exploring batch spread over several backends parallelises as
    # widely as a single-backend batch would.
    routed = []
    for name in names:
        shard_ids = [i for i, d in enumerate(decisions) if d.backend == name]
        if shard_ids:
            subplan, local_to_global = _subplan(plan, shard_ids, name, opts_map.get(name, {}))
            routed.append((name, subplan, local_to_global))

    results: list = [None] * len(plan.items)
    with store_bound_cache(cache, store) as bound:
        # Scheduler-aware prefetch: the routing step just named the
        # structures this batch will touch, so any results a sibling
        # process has already stored for them are warmed into the memory
        # LRU before dispatch.
        if bound is not None and bound.store is not None:
            for signature in dict.fromkeys(signatures):
                bound.prefetch(signature)
        all_results = execute_plans(
            [subplan for _, subplan, _ in routed], executor=executor, cache=bound
        )
    for (name, _, local_to_global), sub_results in zip(routed, all_results):
        for local_index, result in enumerate(sub_results):
            global_index, global_shard = local_to_global[local_index]
            engine = result.info.setdefault("engine", {})
            engine["shard"] = global_shard
            engine["scheduler"] = {
                "backend": name,
                "mode": decisions[global_shard].mode,
                "candidates": list(names),
            }
            results[global_index] = result

    scheduler.observe_batch(results)
    if durable_off:
        scheduler.scoreboard.discard_pending()
    else:
        from repro.engine.store import record_best_effort

        record_best_effort(scheduler.scoreboard.flush, "scoreboard flush")
    return results


def _subplan(plan: ExecutionPlan, shard_ids: Sequence[int], backend_name: str,
             backend_opts: dict) -> "tuple[ExecutionPlan, list[tuple[int, int]]]":
    """One backend's slice of a routed plan, renumbered to be self-contained.

    Items keep their compiled seeds and fingerprints; indices and shard ids
    are renumbered locally (``execute_plan`` addresses results by them) and
    the returned mapping restores each local index to its
    ``(batch index, global shard id)``.
    """
    from repro.api.backends import get_backend

    probe = get_backend(backend_name, **backend_opts)
    shards = plan.shards()
    signatures = plan.meta["shard_signatures"]
    items = []
    local_to_global: list[tuple[int, int]] = []
    for local_shard, shard_id in enumerate(shard_ids):
        for item in shards[shard_id]:
            items.append(replace(item, index=len(items), shard=local_shard))
            local_to_global.append((item.index, shard_id))
    subplan = ExecutionPlan(
        items=items,
        num_shards=len(shard_ids),
        backend_name=backend_name,
        backend_opts=dict(backend_opts),
        backend_instance=None,
        refine=plan.refine,
        top_k=plan.top_k,
        direct=probe.solves_problem_directly,
        meta={
            "batch_size": len(items),
            "shard_sizes": [len(shards[s]) for s in shard_ids],
            "max_shard_size": plan.meta.get("max_shard_size"),
            "shard_signatures": [signatures[s] for s in shard_ids],
        },
    )
    _assign_cache_keys(subplan)
    return subplan, local_to_global


# -- scheduled portfolio (route-then-race-top-k) ----------------------------


def run_portfolio_scheduled(
    problem,
    backends: Sequence[str],
    scheduler: AdaptiveScheduler,
    seed: "int | None" = None,
    refine: bool = True,
    top_k: int = 8,
    backend_opts: "dict | None" = None,
    deadline_s: "float | None" = None,
    race_top_k: "int | None" = None,
    store=None,
):
    """Race only the scoreboard's top-k backends instead of everyone.

    The scoreboard ranks the candidates for this instance's structure and
    the best ``race_top_k`` race as a normal portfolio (sharing one child-
    RNG split, honouring ``deadline_s``).  An epsilon draw swaps the last
    raced slot for a random unraced candidate so the scoreboard keeps
    sampling backends that looked bad early.  Every contender's outcome is
    fed back before returning, and the winner's
    ``info["portfolio_meta"]["scheduler"]`` records the ranking, the raced
    subset, and the exploration flag.  A durable ``store`` binds the
    scoreboard (hydrating it) and flushes the raced outcomes back; an
    explicit ``store=False`` keeps this call out of a bound scoreboard's
    durable log (observations feed the live scoreboard only).
    """
    from repro.api.problem import qubo_signature
    from repro.engine.store import resolve_store

    durable_off = store is False
    store = resolve_store(store)
    if store is not None:
        scheduler.scoreboard.bind_store(store)

    names = _candidate_names(backends)
    opts_map = _validated_opts_map(backend_opts, names)
    signature = signature_key(qubo_signature(problem.to_qubo()))
    # scheduler.deadline_s shapes *routing feasibility* only; it is never
    # silently promoted into race-deadline, because deadline_s=None is the
    # caller's documented claim to a reproducible (serial) portfolio.

    ranked = scheduler.rank(signature, names)
    k = min(race_top_k or scheduler.race_top_k, len(ranked))
    raced = list(ranked[:k])
    explored = False
    leftover = [n for n in ranked[k:]]
    if leftover and scheduler.epsilon > 0.0 and scheduler._rng.random() < scheduler.epsilon:
        swap_in = leftover[int(scheduler._rng.integers(len(leftover)))]
        raced[-1] = swap_in
        explored = True

    result = run_portfolio(
        problem,
        raced,
        seed=seed,
        refine=refine,
        top_k=top_k,
        backend_opts={n: opts_map[n] for n in raced if n in opts_map},
        deadline_s=deadline_s,
        # The scheduled path records through the scoreboard flush below;
        # store=False stops run_portfolio re-resolving REPRO_STORE and
        # recording every contender a second time.
        store=False,
    )
    scheduler.observe_portfolio(result, signature=signature)
    if durable_off:
        scheduler.scoreboard.discard_pending()
    else:
        from repro.engine.store import record_best_effort

        record_best_effort(scheduler.scoreboard.flush, "scoreboard flush")
    result.info.setdefault("portfolio_meta", {})["scheduler"] = {
        "signature": signature,
        "ranked": ranked,
        "raced": raced,
        "explored": explored,
    }
    return result
