"""Pluggable shard executors: serial, thread-pool, process-pool, and async.

An executor maps the shard worker over shard payloads and returns results
in payload order.  Because the planner fixes every item's seed and shard
before dispatch, the executor choice changes *wall-clock only* — the
returned objectives are identical across all four (the determinism
contract the engine tests pin down).  For caller-supplied backend
*instances* that guarantee additionally relies on instance state being
keyed by QUBO structural signature (true of every built-in backend):
shards have distinct signatures, so shared caches never collide across
concurrently running shards, and a worker process's cold copy recomputes
exactly what the shared instance would have.

``threads`` suits backends that release the GIL or wait on I/O (a real
hardware client); ``processes`` sidesteps the GIL for the CPU-bound
simulator backends at the price of pickling shards to workers.  Payloads
for the process pool must therefore be picklable — by-name backend specs
always are, and every built-in adapter/problem pickles cleanly.

``async`` targets latency-bound clients — remote annealers, hosted QAOA
endpoints — where a thread per in-flight shard wastes a worker blocking on
the network.  It runs an asyncio event loop with bounded global and
per-backend concurrency: shards whose backend implements the coroutine
``run_async`` hook are awaited directly on the loop (thousands can be in
flight without a dedicated thread each — the waits are thread-free, CPU
segments borrow the bounded pool), while sync-only backends fall back to
that pool wholesale.  The plug-point is the ``to_coroutine`` attribute a
worker function may carry (see :func:`repro.engine.runner._shard_coroutine`).
"""

from __future__ import annotations

import abc
import asyncio
import os
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Sequence

from repro.exceptions import ReproError


class Executor(abc.ABC):
    """Maps a worker over shard payloads, preserving payload order."""

    name: str = "executor"

    @abc.abstractmethod
    def run(self, worker: Callable, payloads: Sequence) -> list:
        """Apply ``worker`` to each payload; return results in order."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class SerialExecutor(Executor):
    """In-process, one shard after another — the determinism reference."""

    name = "serial"

    def run(self, worker: Callable, payloads: Sequence) -> list:
        return [worker(p) for p in payloads]


class ThreadExecutor(Executor):
    """Thread pool: shards overlap wherever the backend drops the GIL."""

    name = "threads"

    def __init__(self, max_workers: "int | None" = None):
        self.max_workers = max_workers

    def run(self, worker: Callable, payloads: Sequence) -> list:
        if len(payloads) <= 1:
            return [worker(p) for p in payloads]
        workers = self.max_workers or min(len(payloads), (os.cpu_count() or 1) * 2)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(worker, payloads))


class ProcessExecutor(Executor):
    """Process pool: true parallelism for the CPU-bound simulator backends."""

    name = "processes"

    def __init__(self, max_workers: "int | None" = None):
        self.max_workers = max_workers

    def run(self, worker: Callable, payloads: Sequence) -> list:
        if len(payloads) <= 1:
            return [worker(p) for p in payloads]
        workers = self.max_workers or min(len(payloads), os.cpu_count() or 1)
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(worker, payloads))
        except Exception as exc:
            # Diagnose serialization failures only on the error path — the
            # happy path must not pay a second pickling pass.
            try:
                pickle.dumps(payloads)
            except Exception:
                raise ReproError(
                    "processes executor needs picklable shards; select the backend "
                    "by name (not a live instance) or use executor='threads'"
                ) from exc
            raise


class AsyncExecutor(Executor):
    """Asyncio event loop with bounded global / per-backend concurrency.

    Dispatch is still per *shard* (items within a shard stay ordered on one
    backend instance), but shards overlap on the event loop instead of each
    pinning a pool thread:

    * a global semaphore caps how many shards are in flight at once
      (``max_concurrency``, default ``2 * cores`` bounded by the payload
      count);
    * an optional per-backend semaphore (``per_backend``) additionally caps
      concurrent shards per backend name — the knob for a rate-limited
      hardware endpoint;
    * shards whose worker advertises a coroutine variant (the worker
      function's ``to_coroutine`` attribute) and whose backend supports it
      are awaited inline, consuming **no** worker thread while they wait;
      everything else runs on a thread pool of at most ``max_threads``
      workers (default: ``max_concurrency``).

    Determinism matches the other executors: seeds and shard membership are
    fixed at plan time, so concurrency only reorders wall-clock, never
    samples.  ``last_run`` records, after each ``run``, how many distinct
    worker threads the executor actually used — the async-vs-threads
    benchmark pins that this stays below a same-width thread pool.
    """

    name = "async"

    def __init__(
        self,
        max_concurrency: "int | None" = None,
        per_backend: "int | None" = None,
        max_threads: "int | None" = None,
    ):
        if max_concurrency is not None and max_concurrency < 1:
            raise ReproError("max_concurrency must be >= 1")
        if per_backend is not None and per_backend < 1:
            raise ReproError("per_backend must be >= 1")
        self.max_concurrency = max_concurrency
        self.per_backend = per_backend
        self.max_threads = max_threads
        self.last_run: dict = {}

    def run(self, worker: Callable, payloads: Sequence) -> list:
        payloads = list(payloads)
        if not payloads:
            return []
        coro = self._drive(worker, payloads)
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            return asyncio.run(coro)
        # Already inside an event loop (notebook / async application): run
        # the batch on a private loop in a helper thread rather than nesting.
        with ThreadPoolExecutor(max_workers=1, thread_name_prefix="async-exec-host") as host:
            return host.submit(asyncio.run, coro).result()

    async def _drive(self, worker: Callable, payloads: list) -> list:
        limit = self.max_concurrency or min(len(payloads), (os.cpu_count() or 1) * 2)
        limit = max(1, min(limit, len(payloads)))
        gate = asyncio.Semaphore(limit)
        backend_gates: dict = {}
        to_coroutine = getattr(worker, "to_coroutine", None)
        loop = asyncio.get_running_loop()
        threads_used: set = set()

        def _tracked(thunk):
            threads_used.add(threading.get_ident())
            return thunk()

        pool = ThreadPoolExecutor(
            max_workers=self.max_threads or limit, thread_name_prefix="async-exec"
        )
        try:
            async def _on_pool(thunk):
                return await loop.run_in_executor(pool, _tracked, thunk)

            async def _dispatch(payload):
                # The worker may advertise a coroutine variant; it gets the
                # thread-pool fallback as a coroutine factory so sync-only
                # payloads take a worker thread without re-doing whatever
                # resolution the hook already performed.
                if to_coroutine is not None:
                    return await to_coroutine(payload, _on_pool)
                return await _on_pool(lambda: worker(payload))

            async def one(payload):
                key = payload.get("backend_name") if isinstance(payload, dict) else None
                async with gate:
                    if self.per_backend is not None and key is not None:
                        bgate = backend_gates.setdefault(
                            key, asyncio.Semaphore(self.per_backend)
                        )
                        async with bgate:
                            return await _dispatch(payload)
                    return await _dispatch(payload)

            results = list(await asyncio.gather(*(one(p) for p in payloads)))
        finally:
            pool.shutdown(wait=True)
        self.last_run = {
            "payloads": len(payloads),
            "max_concurrency": limit,
            "worker_threads": len(threads_used),
        }
        return results


_EXECUTORS: dict[str, Callable[..., Executor]] = {
    "serial": SerialExecutor,
    "threads": ThreadExecutor,
    "processes": ProcessExecutor,
    "async": AsyncExecutor,
}


def get_executor(spec: "str | Executor", **opts) -> Executor:
    """Resolve an executor name (or pass an instance through)."""
    if isinstance(spec, Executor):
        if opts:
            raise ReproError("executor opts only apply when selecting by name")
        return spec
    try:
        factory = _EXECUTORS[spec]
    except KeyError:
        raise ReproError(
            f"unknown executor {spec!r}; available: {', '.join(list_executors())}"
        ) from None
    return factory(**opts)


def list_executors() -> list[str]:
    """Available executor names, sorted."""
    return sorted(_EXECUTORS)
