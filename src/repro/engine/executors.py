"""Pluggable shard executors: serial, thread-pool, and process-pool.

An executor maps the shard worker over shard payloads and returns results
in payload order.  Because the planner fixes every item's seed and shard
before dispatch, the executor choice changes *wall-clock only* — the
returned objectives are identical across all three (the determinism
contract the engine tests pin down).  For caller-supplied backend
*instances* that guarantee additionally relies on instance state being
keyed by QUBO structural signature (true of every built-in backend):
shards have distinct signatures, so shared caches never collide across
concurrently running shards, and a worker process's cold copy recomputes
exactly what the shared instance would have.

``threads`` suits backends that release the GIL or wait on I/O (a real
hardware client); ``processes`` sidesteps the GIL for the CPU-bound
simulator backends at the price of pickling shards to workers.  Payloads
for the process pool must therefore be picklable — by-name backend specs
always are, and every built-in adapter/problem pickles cleanly.
"""

from __future__ import annotations

import abc
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Sequence

from repro.exceptions import ReproError


class Executor(abc.ABC):
    """Maps a worker over shard payloads, preserving payload order."""

    name: str = "executor"

    @abc.abstractmethod
    def run(self, worker: Callable, payloads: Sequence) -> list:
        """Apply ``worker`` to each payload; return results in order."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class SerialExecutor(Executor):
    """In-process, one shard after another — the determinism reference."""

    name = "serial"

    def run(self, worker: Callable, payloads: Sequence) -> list:
        return [worker(p) for p in payloads]


class ThreadExecutor(Executor):
    """Thread pool: shards overlap wherever the backend drops the GIL."""

    name = "threads"

    def __init__(self, max_workers: "int | None" = None):
        self.max_workers = max_workers

    def run(self, worker: Callable, payloads: Sequence) -> list:
        if len(payloads) <= 1:
            return [worker(p) for p in payloads]
        workers = self.max_workers or min(len(payloads), (os.cpu_count() or 1) * 2)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(worker, payloads))


class ProcessExecutor(Executor):
    """Process pool: true parallelism for the CPU-bound simulator backends."""

    name = "processes"

    def __init__(self, max_workers: "int | None" = None):
        self.max_workers = max_workers

    def run(self, worker: Callable, payloads: Sequence) -> list:
        if len(payloads) <= 1:
            return [worker(p) for p in payloads]
        workers = self.max_workers or min(len(payloads), os.cpu_count() or 1)
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(worker, payloads))
        except Exception as exc:
            # Diagnose serialization failures only on the error path — the
            # happy path must not pay a second pickling pass.
            try:
                pickle.dumps(payloads)
            except Exception:
                raise ReproError(
                    "processes executor needs picklable shards; select the backend "
                    "by name (not a live instance) or use executor='threads'"
                ) from exc
            raise


_EXECUTORS: dict[str, Callable[..., Executor]] = {
    "serial": SerialExecutor,
    "threads": ThreadExecutor,
    "processes": ProcessExecutor,
}


def get_executor(spec: "str | Executor", **opts) -> Executor:
    """Resolve an executor name (or pass an instance through)."""
    if isinstance(spec, Executor):
        if opts:
            raise ReproError("executor opts only apply when selecting by name")
        return spec
    try:
        factory = _EXECUTORS[spec]
    except KeyError:
        raise ReproError(
            f"unknown executor {spec!r}; available: {', '.join(list_executors())}"
        ) from None
    return factory(**opts)


def list_executors() -> list[str]:
    """Available executor names, sorted."""
    return sorted(_EXECUTORS)
