"""The execution engine beneath the solver facade.

``repro.api.facade`` is the user-facing seam; this package is the machinery
under it, split into three pieces that compose::

    compile_plan(problems, backend, seed)        # plan.py      — what to run
        -> ExecutionPlan (shards, seeds, fingerprints, cache keys)
    execute_plan(plan, executor=..., cache=...)  # runner.py    — how to run it
        -> [SolveResult]  via serial / threads / processes / async executors
    ResultCache                                  # cache.py     — what to skip
    AdaptiveScheduler / BackendScoreboard        # scheduler.py — where to run it
        (telemetry-driven shard routing + route-then-race-top-k portfolios)
    EngineStore                                  # store.py     — what survives
        (durable SQLite tier: scoreboard checkpoints + shared result cache)

The design invariants, relied on throughout:

* **seed stability** — per-item child seeds are split from the batch seed
  in batch order at plan time, so executor choice and cache state never
  shift any item's RNG stream; serial and parallel runs of one plan return
  identical objectives;
* **shard = structure** — items are sharded by QUBO structural signature so
  stateful backend caches (hardware embeddings, warm-start angles) amortise
  within a shard while shards parallelise freely;
* **content-addressed results** — cache keys hash the canonical QUBO
  fingerprint, backend, opts, seed, and shard-prefix history, making a hit
  byte-equivalent to a re-run.
"""

from repro.engine.cache import ResultCache, default_cache, make_cache_key, resolve_cache
from repro.engine.decompose import (
    clamp_subqubo,
    partition_variables,
    solve_decomposed,
)
from repro.engine.executors import (
    AsyncExecutor,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
    list_executors,
)
from repro.engine.plan import ExecutionPlan, PlanItem, compile_plan, signature_key
from repro.engine.runner import (
    execute_plan,
    execute_plans,
    run_portfolio,
    solve_batch,
    solve_one,
    solve_one_async,
    solve_single,
)
from repro.engine.scheduler import (
    AdaptiveScheduler,
    BackendScoreboard,
    BackendStats,
    RoutingDecision,
    expected_service_time,
    run_portfolio_scheduled,
    solve_batch_scheduled,
)
from repro.engine.store import (
    EngineStore,
    ScoreboardStore,
    SharedCacheTier,
    engine_store,
    resolve_store,
    store_bound_cache,
)

__all__ = [
    "ResultCache",
    "default_cache",
    "make_cache_key",
    "resolve_cache",
    "clamp_subqubo",
    "partition_variables",
    "solve_decomposed",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "AsyncExecutor",
    "get_executor",
    "list_executors",
    "ExecutionPlan",
    "PlanItem",
    "compile_plan",
    "signature_key",
    "execute_plan",
    "execute_plans",
    "solve_batch",
    "solve_one",
    "solve_one_async",
    "solve_single",
    "run_portfolio",
    "AdaptiveScheduler",
    "BackendScoreboard",
    "BackendStats",
    "RoutingDecision",
    "expected_service_time",
    "solve_batch_scheduled",
    "run_portfolio_scheduled",
    "EngineStore",
    "ScoreboardStore",
    "SharedCacheTier",
    "engine_store",
    "resolve_store",
    "store_bound_cache",
]
