"""Durable engine knowledge: a SQLite-backed store for routing + results.

The engine learns two expensive things while it runs: *where* to route work
(the :class:`~repro.engine.scheduler.BackendScoreboard`'s per-``(backend,
structure-signature)`` quality/latency statistics) and *what* it has already
solved (the content-addressed :class:`~repro.engine.cache.ResultCache`
entries).  Both die with the process, so every new session relearns routing
from cold and re-solves work a sibling process finished minutes ago.  This
module makes that knowledge durable:

* :class:`EngineStore` — one SQLite file (WAL mode, safe for concurrent
  processes) holding both facets; every operation opens a short-lived
  connection and runs in one transaction, so readers never see a torn
  write and a crash mid-batch loses at most that batch's delta.
* :class:`ScoreboardStore` — checkpoints/restores scoreboard statistics.
  Writers record their *observations* (not their merged stats) and the
  store replays them into the stored rows with the same EWMA arithmetic
  the in-memory scoreboard uses.  A single writer therefore round-trips
  **exactly** — a fresh scoreboard hydrated from the store carries the
  byte-identical statistics of the long-lived instance that produced it —
  while concurrent writers merge by observation count: every process's
  observations land, counts and tallies add, and the EWMA fields converge
  to the interleaved history.
* :class:`SharedCacheTier` — a cross-process result tier that slots under
  :class:`~repro.engine.cache.ResultCache` with the same
  ``(fingerprint, backend, opts, seed, shard-prefix)`` keying.  Upserts
  are atomic (one ``INSERT OR REPLACE`` per entry), eviction is
  LRU-by-last-access under a byte budget, and entries are indexed by
  structure signature so the scheduler can prefetch a shard's stored
  results into the in-memory LRU the moment it routes the shard.

``resolve_store`` accepts the same spelling family as ``resolve_cache``:
``None`` consults the ``REPRO_STORE`` environment variable, ``False``
disables the store even when the variable is set, a path opens (and
memoises) a store there, and a ready :class:`EngineStore` passes through.
"""

from __future__ import annotations

import contextlib
import math
import os
import sqlite3
import threading
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.engine.cache import ResultCache, resolve_cache
from repro.exceptions import ReproError

if TYPE_CHECKING:  # pragma: no cover - type-only; runtime imports are lazy
    from repro.api.result import SolveResult
    from repro.engine.scheduler import BackendStats

#: EWMA smoothing used when recording observations without a scoreboard
#: (mirrors the ``BackendScoreboard`` default so direct and scheduled
#: recording produce the same arithmetic).
DEFAULT_ALPHA = 0.25

#: Default byte budget for the shared cache tier (LRU-by-last-access).
DEFAULT_CACHE_BUDGET = 256 * 1024 * 1024

#: Environment variable consulted by ``resolve_store(None)``.
STORE_ENV_VAR = "REPRO_STORE"

#: ``signature`` column value for the backend-global aggregate row
#: (SQLite primary keys cannot contain NULL).
_GLOBAL_SIG = ""

_SCHEMA = """
CREATE TABLE IF NOT EXISTS scoreboard (
    backend        TEXT    NOT NULL,
    signature      TEXT    NOT NULL,
    count          INTEGER NOT NULL,
    quality        REAL,
    latency        REAL,
    best_objective REAL,
    cache_hits     INTEGER NOT NULL,
    timeouts       INTEGER NOT NULL,
    errors         INTEGER NOT NULL,
    PRIMARY KEY (backend, signature)
);
CREATE TABLE IF NOT EXISTS results (
    key        TEXT    PRIMARY KEY,
    blob       BLOB    NOT NULL,
    signature  TEXT,
    nbytes     INTEGER NOT NULL,
    access_seq INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS results_by_signature ON results(signature);
CREATE INDEX IF NOT EXISTS results_by_access ON results(access_seq);
"""


def _to_column(value: float) -> "float | None":
    """NaN/±inf have no SQLite literal; store them as NULL."""
    return None if (value is None or math.isnan(value) or math.isinf(value)) else float(value)


def record_best_effort(action, description: str) -> None:
    """Run a durable-telemetry write, downgrading failure to a warning.

    Every caller sits *after* a batch's results exist.  Losing a
    scoreboard delta is recoverable (the routing knowledge is simply
    relearned); destroying an entire computed batch because a telemetry
    checkpoint hit a full disk or a lock timeout is not — so the write is
    attempted, and failure warns instead of raising.
    """
    try:
        action()
    except Exception as exc:
        warnings.warn(
            f"durable store {description} failed (results are unaffected): {exc!r}",
            RuntimeWarning,
            stacklevel=3,
        )


def portfolio_observations(result, signature: "str | None" = None) -> list[tuple]:
    """Translate an ``info["portfolio"]`` breakdown into observation ops.

    The single source of the status → observation mapping: both the live
    :meth:`~repro.engine.scheduler.BackendScoreboard.observe_portfolio`
    and the durable :meth:`ScoreboardStore.record_portfolio` feed from it,
    so live and stored statistics cannot drift apart when a status or its
    semantics change.  Completed contenders observe quality + latency;
    ``deadline_exceeded`` counts a timeout with a latency observation at
    the deadline itself (the pessimism floor deadline routing needs);
    ``error`` counts an error and nothing else, which leaves the backend
    "seen" but ranked behind everyone that ever produced a result.
    """
    entries = result.info.get("portfolio")
    if not entries:
        return []
    deadline = (result.info.get("portfolio_meta") or {}).get("deadline_s")
    observations = []
    for entry in entries:
        if entry is None:
            continue
        status = entry.get("status")
        if status == "completed":
            observations.append(
                ("observe", entry["method"], signature, entry["objective"],
                 entry["wall_time"], False)
            )
        elif status == "deadline_exceeded":
            observations.append(("timeout", entry["method"], signature, deadline))
        elif status == "error":
            observations.append(("error", entry["method"], signature))
    return observations


class EngineStore:
    """One durable SQLite file holding scoreboard stats and cached results.

    Every operation opens a short-lived connection (WAL journal, busy
    timeout) and commits one transaction, so any number of processes can
    share the file: SQLite serialises the writers and readers always see a
    complete snapshot.  The two facets are exposed as :attr:`scoreboard`
    (a :class:`ScoreboardStore`) and :attr:`cache` (a
    :class:`SharedCacheTier`).

    Args:
        path: The database file; parent directories are created.
        cache_budget_bytes: LRU eviction threshold for the result tier.
        alpha: EWMA smoothing for observations recorded without a
            scoreboard (scoreboard-driven recording uses the scoreboard's
            own alpha).
    """

    def __init__(
        self,
        path: "str | os.PathLike",
        cache_budget_bytes: int = DEFAULT_CACHE_BUDGET,
        alpha: float = DEFAULT_ALPHA,
    ):
        if cache_budget_bytes < 1:
            raise ReproError("EngineStore cache_budget_bytes must be >= 1")
        if not 0.0 < alpha <= 1.0:
            raise ReproError("EngineStore alpha must be in (0, 1]")
        self.path = Path(path)
        self.cache_budget_bytes = int(cache_budget_bytes)
        self.alpha = alpha
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._connection() as conn:
            conn.executescript(_SCHEMA)
        self.scoreboard = ScoreboardStore(self)
        self.cache = SharedCacheTier(self)

    @contextlib.contextmanager
    def _connection(self):
        """A short-lived connection wrapping one committed transaction."""
        conn = sqlite3.connect(self.path, timeout=30.0)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=30000")
            yield conn
            conn.commit()
        except BaseException:
            conn.rollback()
            raise
        finally:
            conn.close()

    def checkpoint(self) -> None:
        """Fold the WAL back into the main file (e.g. before copying it)."""
        with self._connection() as conn:
            conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")

    def integrity_ok(self) -> bool:
        """Run SQLite's integrity check (used by the concurrency tests)."""
        with self._connection() as conn:
            row = conn.execute("PRAGMA integrity_check").fetchone()
        return row is not None and row[0] == "ok"

    def stats(self) -> dict:
        """Row counts and result-tier byte totals (telemetry/benchmarks)."""
        with self._connection() as conn:
            pairs = conn.execute("SELECT COUNT(*) FROM scoreboard").fetchone()[0]
            entries, nbytes = conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(nbytes), 0) FROM results"
            ).fetchone()
        return {
            "scoreboard_pairs": pairs,
            "cache_entries": entries,
            "cache_bytes": nbytes,
            "cache_budget_bytes": self.cache_budget_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EngineStore({str(self.path)!r})"


# -- scoreboard facet --------------------------------------------------------


class ScoreboardStore:
    """Durable ``(backend, structure-signature)`` statistics.

    The write API is *observation replay*: callers hand over the raw
    observations (solves, timeouts, errors) and the store applies them to
    the stored rows inside one transaction, using
    :meth:`~repro.engine.scheduler.BackendStats.observe` — the same
    arithmetic, in the same order, the in-memory scoreboard ran.  Replay is
    what makes the round-trip exact for a single writer and a well-defined
    count-weighted interleave for concurrent ones; checkpointing *merged*
    statistics instead would double-count every re-flush.

    Observation tuples (see :meth:`record`):

    * ``("observe", backend, signature, objective, wall_time, cache_hit)``
    * ``("timeout", backend, signature, deadline_s)``
    * ``("error",   backend, signature)``

    ``signature=None`` targets only the backend-global aggregate; a real
    signature updates both the exact pair and the aggregate, mirroring
    ``BackendScoreboard.observe``.
    """

    def __init__(self, store: EngineStore):
        self._store = store

    # -- writing ---------------------------------------------------------------

    def record(self, observations: Iterable[tuple], alpha: "float | None" = None) -> int:
        """Replay ``observations`` into the stored rows; returns the count.

        One transaction: concurrent recorders serialise on the SQLite write
        lock, so two processes flushing at once interleave whole batches
        and every observation lands exactly once.
        """
        from repro.engine.scheduler import BackendStats

        observations = list(observations)
        if not observations:
            return 0
        alpha = self._store.alpha if alpha is None else alpha
        with self._store._connection() as conn:
            conn.execute("BEGIN IMMEDIATE")
            loaded: "dict[tuple[str, str], BackendStats]" = {}

            def stats_for(backend: str, signature: "str | None") -> BackendStats:
                column = _GLOBAL_SIG if signature is None else signature
                found = loaded.get((backend, column))
                if found is None:
                    row = conn.execute(
                        "SELECT count, quality, latency, best_objective, cache_hits, "
                        "timeouts, errors FROM scoreboard WHERE backend=? AND signature=?",
                        (backend, column),
                    ).fetchone()
                    found = _row_to_stats(row) if row is not None else BackendStats()
                    loaded[(backend, column)] = found
                return found

            for op in observations:
                kind, backend, signature = op[0], op[1], op[2]
                targets = {signature, None}
                if kind == "observe":
                    objective, wall_time, cache_hit = op[3], op[4], op[5]
                    for target in targets:
                        stats_for(backend, target).observe(
                            objective, wall_time, alpha, cache_hit=cache_hit
                        )
                elif kind == "timeout":
                    deadline = op[3]
                    for target in targets:
                        stats = stats_for(backend, target)
                        stats.timeouts += 1
                        if deadline is not None:
                            stats.observe(math.nan, deadline, alpha)
                elif kind == "error":
                    for target in targets:
                        stats_for(backend, target).errors += 1
                else:
                    raise ReproError(f"unknown scoreboard observation kind: {kind!r}")

            conn.executemany(
                "INSERT OR REPLACE INTO scoreboard "
                "(backend, signature, count, quality, latency, best_objective, "
                " cache_hits, timeouts, errors) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        backend,
                        column,
                        stats.count,
                        _to_column(stats.quality),
                        _to_column(stats.latency),
                        _to_column(stats.best_objective),
                        stats.cache_hits,
                        stats.timeouts,
                        stats.errors,
                    )
                    for (backend, column), stats in loaded.items()
                ],
            )
        return len(observations)

    def record_results(self, results: Sequence["SolveResult"]) -> int:
        """Record engine-executed results from their ``info["engine"]`` blocks."""
        return self.record(
            [
                (
                    "observe",
                    r.method,
                    r.info.get("engine", {}).get("signature"),
                    r.objective,
                    r.wall_time,
                    bool(r.info.get("engine", {}).get("cache_hit", False)),
                )
                for r in results
                if r is not None
            ]
        )

    def record_portfolio(self, result: "SolveResult", signature: "str | None" = None) -> int:
        """Record every contender of an ``info["portfolio"]`` breakdown."""
        return self.record(portfolio_observations(result, signature=signature))

    # -- reading ---------------------------------------------------------------

    def load(self) -> "dict[tuple[str, str | None], BackendStats]":
        """Every stored pair as live :class:`BackendStats` (hydration feed)."""
        with self._store._connection() as conn:
            rows = conn.execute(
                "SELECT backend, signature, count, quality, latency, best_objective, "
                "cache_hits, timeouts, errors FROM scoreboard"
            ).fetchall()
        return {
            (row[0], None if row[1] == _GLOBAL_SIG else row[1]): _row_to_stats(row[2:])
            for row in rows
        }

    def snapshot(self) -> dict:
        """``{(backend, signature): stats-dict}`` copy for telemetry/tests."""
        return {key: stats.as_dict() for key, stats in self.load().items()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScoreboardStore({str(self._store.path)!r})"


def _row_to_stats(row) -> "BackendStats":
    from repro.engine.scheduler import BackendStats

    count, quality, latency, best, cache_hits, timeouts, errors = row
    return BackendStats(
        count=count,
        quality=math.nan if quality is None else quality,
        latency=math.nan if latency is None else latency,
        best_objective=math.inf if best is None else best,
        cache_hits=cache_hits,
        timeouts=timeouts,
        errors=errors,
    )


# -- shared cache facet ------------------------------------------------------


class SharedCacheTier:
    """Cross-process content-addressed result blobs under a byte budget.

    Slots beneath :class:`~repro.engine.cache.ResultCache` (its ``store=``
    argument): the cache consults this tier after its memory and directory
    tiers miss, and writes every ``put`` through.  Keys are the cache's own
    ``(fingerprint, backend, opts, seed, shard-prefix)`` digests, so an
    entry written by any process is a sound hit for every other.

    * **atomic upserts** — one ``INSERT OR REPLACE`` per entry inside a
      transaction; a crash never leaves a torn blob (SQLite rolls back).
    * **LRU-by-last-access** — every ``get``/``put`` stamps a monotonically
      increasing access sequence; when the tier exceeds the store's byte
      budget the stalest entries are deleted first (never the one just
      written, so a single oversized entry cannot thrash the tier empty).
    * **signature index** — entries remember the structure signature of the
      shard that produced them, which is what scheduler-aware prefetch
      (:meth:`ResultCache.prefetch`) queries by.
    """

    def __init__(self, store: EngineStore):
        self._store = store

    def get(self, key: str) -> "bytes | None":
        """The stored blob (touching its LRU stamp), or ``None`` on a miss.

        A miss is a pure read — it never takes the SQLite write lock, so
        concurrent processes' lookups stay WAL-parallel; only a hit pays
        one single-statement write transaction to stamp the LRU sequence.
        """
        with self._store._connection() as conn:
            row = conn.execute("SELECT blob FROM results WHERE key=?", (key,)).fetchone()
            if row is None:
                return None
            conn.execute(
                "UPDATE results SET access_seq="
                "(SELECT COALESCE(MAX(access_seq), 0) + 1 FROM results) WHERE key=?",
                (key,),
            )
            return row[0]

    def put(self, key: str, blob: bytes, signature: "str | None" = None) -> None:
        """Atomically upsert one entry, then evict LRU past the byte budget."""
        with self._store._connection() as conn:
            conn.execute("BEGIN IMMEDIATE")
            conn.execute(
                "INSERT OR REPLACE INTO results (key, blob, signature, nbytes, access_seq) "
                "VALUES (?, ?, ?, ?, ?)",
                (key, blob, signature, len(blob), self._next_seq(conn)),
            )
            self._evict_over_budget(conn, keep=key)

    def evict(self, key: str) -> None:
        """Drop one entry (e.g. a blob that failed to unpickle)."""
        with self._store._connection() as conn:
            conn.execute("DELETE FROM results WHERE key=?", (key,))

    def entries_for(self, signature: str) -> "list[tuple[str, bytes]]":
        """All ``(key, blob)`` pairs stored for one structure signature.

        A prefetch counts as an access: the whole signature group gets one
        fresh LRU stamp (a single-statement write; nothing on an empty
        group), so entries a scheduler keeps routing to are never the
        eviction victims.
        """
        with self._store._connection() as conn:
            rows = conn.execute(
                "SELECT key, blob FROM results WHERE signature=? ORDER BY key", (signature,)
            ).fetchall()
            if rows:
                conn.execute(
                    "UPDATE results SET access_seq="
                    "(SELECT COALESCE(MAX(access_seq), 0) + 1 FROM results) "
                    "WHERE signature=?",
                    (signature,),
                )
        return [(row[0], row[1]) for row in rows]

    def __contains__(self, key: str) -> bool:
        with self._store._connection() as conn:
            row = conn.execute("SELECT 1 FROM results WHERE key=?", (key,)).fetchone()
        return row is not None

    def __len__(self) -> int:
        with self._store._connection() as conn:
            return conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]

    def total_bytes(self) -> int:
        with self._store._connection() as conn:
            return conn.execute("SELECT COALESCE(SUM(nbytes), 0) FROM results").fetchone()[0]

    # -- internals -------------------------------------------------------------

    @staticmethod
    def _next_seq(conn) -> int:
        return conn.execute("SELECT COALESCE(MAX(access_seq), 0) + 1 FROM results").fetchone()[0]

    def _evict_over_budget(self, conn, keep: str) -> None:
        budget = self._store.cache_budget_bytes
        total = conn.execute("SELECT COALESCE(SUM(nbytes), 0) FROM results").fetchone()[0]
        if total <= budget:
            return
        victims = conn.execute(
            "SELECT key, nbytes FROM results WHERE key != ? ORDER BY access_seq, key",
            (keep,),
        ).fetchall()
        for key, nbytes in victims:
            if total <= budget:
                break
            conn.execute("DELETE FROM results WHERE key=?", (key,))
            total -= nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SharedCacheTier({str(self._store.path)!r})"


# -- resolution --------------------------------------------------------------


#: Memoised stores per resolved path, so ``store="path"`` / ``REPRO_STORE``
#: reuse one instance (and its schema check) across calls.
_OPEN_STORES: "dict[Path, EngineStore]" = {}
_OPEN_LOCK = threading.Lock()


def engine_store(path: "str | os.PathLike", **kwargs) -> EngineStore:
    """The memoised :class:`EngineStore` for ``path`` (created on first use)."""
    resolved = Path(path).expanduser().resolve()
    with _OPEN_LOCK:
        found = _OPEN_STORES.get(resolved)
        if found is None:
            found = EngineStore(resolved, **kwargs)
            _OPEN_STORES[resolved] = found
        return found


def resolve_store(spec) -> "EngineStore | None":
    """Normalise every accepted ``store=`` spelling to a store (or ``None``).

    ``None`` consults the ``REPRO_STORE`` environment variable (unset means
    no store), ``False`` disables the store even when the variable is set,
    a path string / ``PathLike`` opens the memoised store there, and a
    ready :class:`EngineStore` passes through.
    """
    if spec is False:
        return None
    if spec is None:
        env = os.environ.get(STORE_ENV_VAR, "").strip()
        if not env:
            return None
        spec = env
    if isinstance(spec, EngineStore):
        return spec
    if isinstance(spec, (str, os.PathLike)):
        return engine_store(spec)
    raise ReproError(
        f"store must be None/False, a path, or an EngineStore; got {type(spec).__name__}"
    )


@contextlib.contextmanager
def store_bound_cache(cache, store: "EngineStore | None"):
    """Resolve ``cache=`` with the store's shared tier attached *for the call*.

    With no store this is plain :func:`~repro.engine.cache.resolve_cache`.
    With a store, a disabled cache becomes a fresh store-backed
    :class:`ResultCache` (a durable store is an explicit request for result
    reuse); an enabled cache without a tier borrows the store's tier for
    the duration of the block and is detached on exit — a caller's (or the
    process-global) cache must not keep writing to a store the caller
    stopped passing.  Entries promoted into the cache's memory tier during
    the block stay (they are sound content-addressed results).  A cache
    *constructed* around a different store is an error — silently rebinding
    would serve one store's entries under the other's budget and stats.
    """
    resolved = resolve_cache(cache)
    if store is None:
        yield resolved
        return
    if resolved is None:
        yield ResultCache(store=store.cache)
        return
    # Borrows are reference-counted under the cache's own lock: concurrent
    # calls sharing one cache (e.g. the process-global ``cache=True``) and
    # the same store each hold the tier until the *last* borrower exits —
    # the first finisher must not detach it out from under the others.
    with resolved._lock:
        if resolved.store is not None:
            if resolved.store._store.path.resolve() != store.path.resolve():
                raise ReproError("cache is already bound to a different EngineStore")
            borrowed = resolved._store_borrows > 0
            if borrowed:
                resolved._store_borrows += 1
        else:
            resolved.store = store.cache
            resolved._store_borrows = 1
            borrowed = True
    if not borrowed:  # permanently bound at construction: nothing to manage
        yield resolved
        return
    try:
        yield resolved
    finally:
        with resolved._lock:
            resolved._store_borrows -= 1
            if resolved._store_borrows == 0:
                resolved.store = None
