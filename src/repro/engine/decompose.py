"""qbsolv-style decomposition of QUBOs that exceed backend capacity.

Hardware (and exact) backends bound the number of variables they can take
in one call — a device has so many qubits, brute force has so many bits.
This module splits an oversized QUBO into subproblems that fit, solves
them, and stitches the pieces back into one global assignment:

1. **Partition** the variables over the model's ``interaction_graph`` with
   a deterministic BFS, so strongly coupled variables land in the same
   block and every block fits the backend's capacity.
2. **Clamp**: given the current global assignment, each block becomes a
   sub-QUBO over its own variables — couplings to outside variables fold
   into the block's linear terms (an outside ``x_j`` is a constant inside
   the block).
3. **Solve all blocks as one engine batch** through the facade's
   ``solve_many``, so sharding, result caching, the adaptive scheduler,
   and the durable store all apply to subproblems exactly as they do to
   whole problems.
4. **Stitch**: accept a block's new bits only if they lower the *global*
   energy, then iterate (re-clamp against the improved assignment) until a
   full round yields no improvement.

The refinement loop is classical and monotone — global energy never
increases — which is the hybrid decomposition regime the NISQ-era
extension of the paper motivates for instances beyond device scale.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.exceptions import ReproError
from repro.obs import trace as obs
from repro.qubo.model import QuboModel

#: Child-seed bound, matching the engine planner's.
_SEED_RANGE = 2**63 - 1


def partition_variables(
    model: QuboModel, capacity: int, overlap: int = 0
) -> list[np.ndarray]:
    """Split the variables into coupling-aware blocks of at most ``capacity``.

    Deterministic BFS over :meth:`QuboModel.interaction_graph`: each block
    grows from the lowest-index unassigned variable, absorbing neighbours
    (lowest index first) until full, so strongly connected regions stay
    together.  With ``overlap > 0`` each block is then extended by up to
    that many already-assigned boundary neighbours (blocks may share
    variables; every variable still has exactly one *home* block).  Every
    returned block satisfies ``len(block) <= capacity``.
    """
    if capacity < 1:
        raise ReproError("decomposition capacity must be >= 1")
    n = model.num_variables
    graph = model.interaction_graph()
    assigned = np.zeros(n, dtype=bool)
    blocks: list[np.ndarray] = []
    for start in range(n):
        if assigned[start]:
            continue
        block = [start]
        assigned[start] = True
        frontier = [start]
        while frontier and len(block) < capacity:
            node = frontier.pop(0)
            for nbr in sorted(graph.neighbors(node)):
                if assigned[nbr] or len(block) >= capacity:
                    continue
                assigned[nbr] = True
                block.append(nbr)
                frontier.append(nbr)
        core = list(block)
        if overlap > 0 and len(block) < capacity:
            boundary = sorted(
                {
                    nbr
                    for node in core
                    for nbr in graph.neighbors(node)
                    if nbr not in core and assigned[nbr]
                }
            )
            block.extend(boundary[: min(overlap, capacity - len(block))])
        blocks.append(np.array(block, dtype=np.int64))
    return blocks


def clamp_subqubo(
    model: QuboModel,
    block: np.ndarray,
    assignment: np.ndarray,
    a: "np.ndarray | None" = None,
    S: "np.ndarray | None" = None,
) -> QuboModel:
    """The sub-QUBO over ``block`` with all other variables clamped.

    For block ``B`` and outside assignment ``x``, the block-local linear
    terms are ``a[B] + S[B] @ x - S[B, B] @ x[B]`` (outside couplings become
    constants), the quadratic terms are the couplings internal to ``B``,
    and the constant part of the energy is dropped — block solutions are
    compared by *global* energy, so only relative sub-energies matter.
    Pass precomputed ``symmetric_couplings()`` arrays to amortise the dense
    expansion across blocks and rounds.
    """
    if a is None or S is None:
        a, S = model.symmetric_couplings()
    x = np.asarray(assignment, dtype=float)
    sub = QuboModel(num_variables=len(block))
    sub_linear = a[block] + S[block] @ x - S[np.ix_(block, block)] @ x[block]
    sub.add_linear_from(np.arange(len(block)), sub_linear)
    _, _, qi, qj, qv = model.coo_terms()
    local = np.full(model.num_variables, -1, dtype=np.int64)
    local[block] = np.arange(len(block))
    inside = (local[qi] >= 0) & (local[qj] >= 0)
    sub.add_quadratic_from(local[qi[inside]], local[qj[inside]], qv[inside])
    return sub


def solve_decomposed(
    problem,
    backend,
    capacity: int,
    backend_name: "str | None" = None,
    backend_opts: "dict | None" = None,
    seed: "int | None" = None,
    refine: bool = True,
    top_k: int = 8,
    executor: str = "serial",
    cache: Any = None,
    scheduler: Any = None,
    store: Any = None,
    max_rounds: int = 8,
    overlap: int = 0,
):
    """Solve an oversized problem by decompose -> batch-solve -> stitch.

    ``problem`` is any :class:`~repro.api.problem.Problem`; its QUBO is
    partitioned into blocks of at most ``capacity`` variables, and each
    refinement round solves every block (clamped against the current global
    assignment) as **one** ``solve_many`` batch on ``backend``.  Returns a
    :class:`~repro.api.result.SolveResult` whose solution went through the
    problem's own ``decode``/``refine``/``evaluate``, with the stitching
    provenance under ``info["decompose"]``.

    Rounds are monotone in global QUBO energy: a block's bits are accepted
    only if flipping them lowers the energy of the full assignment, and the
    loop stops after a round with no accepted block (or ``max_rounds``).
    """
    # Lazy imports: engine modules must not import repro.api at module level.
    from repro.api.adapters.qubo import RawQuboProblem
    from repro.api.facade import solve_many
    from repro.api.result import SolveResult

    if capacity < 1:
        raise ReproError("decomposition capacity must be >= 1")
    started = time.perf_counter()
    model = problem.to_qubo()
    n = model.num_variables
    blocks = partition_variables(model, capacity, overlap=overlap)
    a, S = model.symmetric_couplings()

    # Deterministic greedy start: set the bits whose linear term is negative
    # (each is individually profitable), then let the rounds repair couplings.
    x = (a < 0.0).astype(float)
    energy = float(model.energies(x[np.newaxis, :])[0])

    rng = np.random.default_rng(seed)
    rounds_meta: list[dict] = []
    with obs.span(
        "engine.decompose", capacity=int(capacity), blocks=len(blocks)
    ) as decompose_span:
        for round_no in range(max_rounds):
            with obs.span("decompose.round", round=round_no) as round_span:
                sub_problems = [
                    RawQuboProblem(clamp_subqubo(model, block, x, a=a, S=S))
                    for block in blocks
                ]
                round_seeds = [
                    int(s) for s in rng.integers(0, _SEED_RANGE, size=len(blocks))
                ]
                sub_results = solve_many(
                    sub_problems,
                    backend=backend if backend_name is None else backend_name,
                    seeds=round_seeds,
                    refine=False,
                    top_k=top_k,
                    executor=executor,
                    cache=cache,
                    scheduler=scheduler,
                    store=store,
                    **(backend_opts or {}),
                )
                accepted = 0
                for block, sub_result in zip(blocks, sub_results):
                    candidate = x.copy()
                    candidate[block] = np.asarray(sub_result.solution, dtype=float)
                    cand_energy = float(model.energies(candidate[np.newaxis, :])[0])
                    if cand_energy < energy:
                        x, energy = candidate, cand_energy
                        accepted += 1
                rounds_meta.append(
                    {"round": round_no, "accepted_blocks": accepted, "energy": energy}
                )
                round_span.set(accepted_blocks=accepted, energy=energy)
            if accepted == 0:
                break
        decompose_span.set(rounds=len(rounds_meta), energy=energy)

    bits = tuple(int(b) for b in x)
    solution = problem.decode(bits)
    if refine:
        solution = problem.refine(solution)
    method = backend_name or getattr(backend, "name", "backend")
    return SolveResult(
        problem=problem.name,
        method=method,
        solution=solution,
        objective=float(problem.evaluate(solution)),
        energy=energy,
        wall_time=time.perf_counter() - started,
        num_variables=n,
        info={
            "decompose": {
                "capacity": int(capacity),
                "num_blocks": len(blocks),
                "block_sizes": [int(len(b)) for b in blocks],
                "overlap": int(overlap),
                "rounds": rounds_meta,
                "energy_trajectory": [r["energy"] for r in rounds_meta],
            }
        },
    )
