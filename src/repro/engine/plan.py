"""Plan compilation: problems -> canonical QUBOs -> fingerprints -> shards.

The planner turns a batch into an :class:`ExecutionPlan` that any executor
can run:

1. every problem is coerced through :func:`~repro.api.adapters.as_problems`
   and formulated once (``to_qubo`` caches the model on the adapter);
2. each item gets a deterministic child seed split from the batch seed *in
   batch order* — seed assignment never depends on sharding, executor
   choice, or cache state, which is what makes serial and parallel runs of
   the same plan return identical objectives;
3. items are grouped into **shards** by structural signature
   (:func:`~repro.api.problem.qubo_signature`): same-shaped QUBOs share a
   backend instance so embedding / warm-start caches amortise *within* the
   shard, while distinct shards are free to run in parallel;
4. when the backend is selected by name (a fresh instance per shard), each
   item gets a content-addressed cache key over ``(QUBO fingerprint,
   backend, opts, seed)`` **plus its shard-prefix history** — within a
   shard, item *k*'s samples depend on the backend state built by items
   ``0..k-1`` (the embedding is searched with the leader's RNG, warm-start
   angles come from the leader's optimisation), so the key hashes the
   predecessors' fingerprints and seeds too.  A shard-position-0 key has an
   empty history and is therefore interchangeable with a standalone
   ``solve`` of the same fingerprint/opts/seed.

Backend instances passed by the caller are shared and stateful by design;
their state is not content-addressable, so instance-backed plans disable
caching rather than risk wrong hits.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.engine.cache import make_cache_key
from repro.exceptions import ReproError
from repro.utils.rngtools import ensure_rng

if TYPE_CHECKING:  # pragma: no cover - type-only; runtime imports are lazy
    from repro.api.backends import Backend
    from repro.api.problem import Problem

#: Upper bound on the child-seed range; matches ``repro.utils.rngtools.spawn``.
_SEED_RANGE = 2**63 - 1


def _opts_key(backend_opts: dict, refine: bool, top_k: int) -> str:
    """Canonical string of everything besides model/seed that shapes a result."""
    return repr((sorted(backend_opts.items()), bool(refine), int(top_k)))


def signature_key(signature) -> str:
    """Short stable hex key of a :func:`~repro.api.problem.qubo_signature`.

    Signatures are plain-data tuples (variable count + sorted coupling
    pairs), so ``repr`` is deterministic across processes; the digest makes
    them usable as telemetry fields and scoreboard keys without dragging a
    potentially large tuple through every result's ``info`` dict.
    """
    return hashlib.sha256(repr(signature).encode("utf-8")).hexdigest()[:16]


@dataclass
class PlanItem:
    """One batch entry: a problem plus everything needed to solve it."""

    index: int            #: position in the original batch
    problem: Problem
    seed: int             #: child seed split from the batch seed
    shard: int            #: shard id (items of one shard share a backend instance)
    shard_pos: int        #: position within the shard (0 = shard leader)
    fingerprint: str      #: canonical content hash of the item's QUBO
    cache_key: "str | None" = None   #: None when caching cannot be sound
    label: "str | None" = None       #: caller tag, surfaced in telemetry only


@dataclass
class ExecutionPlan:
    """A compiled batch: sharded items plus the backend/decode configuration.

    ``backend_name``/``backend_opts`` describe a by-name backend (each shard
    builds a fresh instance); ``backend_instance`` carries a caller-supplied
    instance shared across shards instead.  Exactly one of the two is set.
    """

    items: list[PlanItem]
    num_shards: int
    backend_name: "str | None"
    backend_opts: dict
    backend_instance: "Backend | None"
    refine: bool
    top_k: int
    direct: bool           #: backend solves problems directly (no QUBO sampling)
    meta: dict = field(default_factory=dict)

    def shards(self) -> list[list[PlanItem]]:
        """Items grouped by shard id, batch order preserved within each."""
        groups: list[list[PlanItem]] = [[] for _ in range(self.num_shards)]
        for item in self.items:
            groups[item.shard].append(item)
        return groups

    def shard_signature(self, shard: int) -> "str | None":
        """The 16-hex structure key of one shard (scoreboard / store index)."""
        signatures = self.meta.get("shard_signatures") or []
        return signatures[shard] if 0 <= shard < len(signatures) else None

    @property
    def cacheable(self) -> bool:
        return self.backend_name is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        backend = self.backend_name or repr(self.backend_instance)
        return (
            f"ExecutionPlan({len(self.items)} items, {self.num_shards} shards, "
            f"backend={backend})"
        )


def compile_plan(
    problems: Iterable["Problem | Any"],
    backend: "str | Backend" = "sa",
    seed: "int | None" = None,
    refine: bool = True,
    top_k: int = 8,
    backend_opts: "dict | None" = None,
    max_shard_size: "int | None" = None,
    adapter_opts: "dict | None" = None,
    seeds: "Sequence[int] | None" = None,
    labels: "Sequence[str | None] | None" = None,
) -> ExecutionPlan:
    """Compile a batch into an :class:`ExecutionPlan`.

    Args:
        problems: Adapters or raw domain objects (see
            :func:`~repro.api.adapters.as_problems`).
        backend: Registry name (fresh instance per shard, cacheable) or a
            shared :class:`Backend` instance (stateful, not cacheable).
        seed: Batch seed; children are split per item in batch order.
        refine: Forwarded to the solve kernel.
        top_k: Forwarded to the solve kernel.
        backend_opts: Factory options for a by-name backend.
        max_shard_size: Split signature groups larger than this into
            several shards (more parallelism, embedding paid once per
            split); ``None`` keeps one shard per signature.
        adapter_opts: Extra kwargs for ``as_problems`` coercion.
        seeds: Explicit per-item child seeds, overriding the batch split.
            One integer per problem, used verbatim.  This is the seam a
            caller that aggregates *independently seeded* requests (the
            service tier's coalescing queue) needs: combined with
            ``max_shard_size=1``, every item is its own shard leader, so
            its result — and its cache key — is exactly that of a
            standalone ``solve`` with the same fingerprint/opts/seed, no
            matter which batch it rode in.
        labels: Optional per-item tags (one entry per problem, ``None``
            entries allowed).  Labels ride along purely as telemetry —
            they surface in ``info["engine"]["label"]`` but never enter
            fingerprints, sharding, seeds, or cache keys, so labelled and
            unlabelled runs of the same batch are bit-identical.  The SQL
            workload compiler uses them to stamp each result with its
            instance label (``docs/workload.md``).
    """
    # Lazy imports: repro.api.facade imports this package at module load,
    # so engine modules must not import repro.api back at module level.
    from repro.api.adapters import as_problems
    from repro.api.backends import Backend, get_backend
    from repro.api.problem import qubo_signature

    backend_opts = dict(backend_opts or {})
    if isinstance(backend, Backend):
        if backend_opts:
            raise ReproError("backend_opts only apply when selecting a backend by name")
        if max_shard_size is not None:
            # Splitting one signature group across shards is only sound when
            # each shard gets a fresh instance: split shards sharing a live
            # instance would reuse (or race on) each other's signature-keyed
            # caches depending on scheduling.
            raise ReproError(
                "max_shard_size requires selecting the backend by name; shards "
                "sharing a live Backend instance cannot split a signature group "
                "deterministically"
            )
        backend_name, backend_instance = None, backend
        probe = backend
    else:
        backend_name, backend_instance = str(backend), None
        probe = get_backend(backend_name, **backend_opts)
    if max_shard_size is not None and max_shard_size < 1:
        raise ReproError("max_shard_size must be >= 1")

    coerced = as_problems(problems, **(adapter_opts or {}))
    if seeds is not None:
        child_seeds = [int(s) for s in seeds]
        if len(child_seeds) != len(coerced):
            raise ReproError(
                f"seeds= must provide one seed per problem: got {len(child_seeds)} "
                f"seeds for {len(coerced)} problems"
            )
        if any(not 0 <= s < _SEED_RANGE for s in child_seeds):
            raise ReproError(f"explicit seeds must be integers in [0, {_SEED_RANGE})")
    else:
        base = ensure_rng(seed)
        child_seeds = [int(s) for s in base.integers(0, _SEED_RANGE, size=len(coerced))]
    if labels is not None:
        item_labels = list(labels)
        if len(item_labels) != len(coerced):
            raise ReproError(
                f"labels= must provide one label per problem: got {len(item_labels)} "
                f"labels for {len(coerced)} problems"
            )
    else:
        item_labels = [None] * len(coerced)

    # Group by structural signature in first-seen order; optionally split
    # oversized groups so wide batches expose more parallelism.
    shard_of: dict = {}
    shard_fill: list[int] = []
    signature_of_shard: list = []
    items: list[PlanItem] = []
    for index, (problem, child_seed) in enumerate(zip(coerced, child_seeds)):
        model = problem.to_qubo()
        signature = qubo_signature(model)
        shard = shard_of.get(signature)
        if shard is None or (max_shard_size is not None and shard_fill[shard] >= max_shard_size):
            shard = len(shard_fill)
            shard_of[signature] = shard
            shard_fill.append(0)
            signature_of_shard.append(signature)
        shard_pos = shard_fill[shard]
        shard_fill[shard] += 1
        items.append(
            PlanItem(
                index=index,
                problem=problem,
                seed=child_seed,
                shard=shard,
                shard_pos=shard_pos,
                fingerprint=model.fingerprint(),
                label=item_labels[index],
            )
        )

    plan = ExecutionPlan(
        items=items,
        num_shards=len(shard_fill),
        backend_name=backend_name,
        backend_opts=backend_opts,
        backend_instance=backend_instance,
        refine=refine,
        top_k=top_k,
        direct=probe.solves_problem_directly,
        meta={
            "batch_size": len(items),
            "shard_sizes": list(shard_fill),
            "max_shard_size": max_shard_size,
            # Routing key per shard: what the adaptive scheduler's scoreboard
            # indexes backend stats by (and what result telemetry reports).
            "shard_signatures": [signature_key(s) for s in signature_of_shard],
        },
    )
    if plan.cacheable:
        _assign_cache_keys(plan)
    return plan


def _assign_cache_keys(plan: ExecutionPlan) -> None:
    """Attach shard-history-aware cache keys to every item of a by-name plan."""
    opts_key = _opts_key(plan.backend_opts, plan.refine, plan.top_k)
    for shard_items in plan.shards():
        history = hashlib.sha256()
        for item in shard_items:
            item.cache_key = make_cache_key(
                item.fingerprint,
                plan.backend_name,
                opts_key + "|" + history.hexdigest(),
                item.seed,
            )
            history.update(item.fingerprint.encode("ascii"))
            history.update(str(item.seed).encode("ascii"))


def single_solve_cache_key(
    fingerprint: str,
    backend_name: str,
    backend_opts: dict,
    refine: bool,
    top_k: int,
    seed: int,
) -> str:
    """Cache key for a standalone ``solve`` call with an integer seed.

    Uses an *empty* shard history, making it interchangeable with the
    shard-leader key of a batch item that has the same fingerprint, backend,
    opts, and effective seed — both run a fresh backend instance on a fresh
    RNG, so their results coincide.
    """
    opts_key = _opts_key(dict(backend_opts), refine, top_k)
    empty_history = hashlib.sha256().hexdigest()
    return make_cache_key(fingerprint, backend_name, opts_key + "|" + empty_history, seed)
