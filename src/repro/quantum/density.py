"""Density-matrix simulation for mixed states and noisy circuits."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.state import Statevector
from repro.utils.bits import index_to_bitstring
from repro.utils.rngtools import ensure_rng

_ATOL = 1e-9


def _apply_matrix_tensor(
    rho: np.ndarray, num_qubits: int, matrix: np.ndarray, targets: Sequence[int]
) -> np.ndarray:
    """Compute ``U rho U^dagger`` with U acting on ``targets``.

    ``rho`` is viewed as a tensor with ``2*num_qubits`` axes (row axes first);
    ``U`` multiplies the row axes, ``U*`` the column axes.
    """
    n = num_qubits
    k = len(targets)
    tensor = rho.reshape((2,) * (2 * n))
    gate = matrix.reshape((2,) * (2 * k))
    # Left multiplication on the row axes.
    moved = np.tensordot(gate, tensor, axes=(list(range(k, 2 * k)), list(targets)))
    tensor = np.moveaxis(moved, list(range(k)), list(targets))
    # Right multiplication by U^dagger on the column axes.
    col_targets = [n + t for t in targets]
    gate_conj = matrix.conj().reshape((2,) * (2 * k))
    moved = np.tensordot(gate_conj, tensor, axes=(list(range(k, 2 * k)), col_targets))
    tensor = np.moveaxis(moved, list(range(k)), col_targets)
    return tensor.reshape(2**n, 2**n)


class DensityMatrix:
    """An ``n``-qubit mixed state ``rho``."""

    def __init__(self, matrix: np.ndarray, validate: bool = True):
        rho = np.asarray(matrix, dtype=complex)
        dim = rho.shape[0]
        if rho.ndim != 2 or rho.shape[0] != rho.shape[1]:
            raise SimulationError("density matrix must be square")
        if dim == 0 or dim & (dim - 1):
            raise SimulationError(f"dimension {dim} is not a power of 2")
        if validate:
            if not np.allclose(rho, rho.conj().T, atol=1e-8):
                raise SimulationError("density matrix must be Hermitian")
            tr = np.trace(rho).real
            if abs(tr - 1.0) > 1e-6:
                if tr < _ATOL:
                    raise SimulationError("density matrix has zero trace")
                rho = rho / tr
        self._rho = rho

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_statevector(cls, state: Statevector) -> "DensityMatrix":
        """The pure state ``|psi><psi|``."""
        return cls(state.density_matrix(), validate=False)

    @classmethod
    def zero_state(cls, num_qubits: int) -> "DensityMatrix":
        return cls.from_statevector(Statevector.zero_state(num_qubits))

    @classmethod
    def maximally_mixed(cls, num_qubits: int) -> "DensityMatrix":
        dim = 2**num_qubits
        return cls(np.eye(dim, dtype=complex) / dim, validate=False)

    @classmethod
    def werner(cls, fidelity: float) -> "DensityMatrix":
        """Two-qubit Werner state with the given fidelity to ``|Phi+>``.

        ``rho = F |Phi+><Phi+| + (1-F)/3 (I - |Phi+><Phi+|)`` — the standard
        noise model for imperfect entanglement links in quantum networks.
        """
        if not 0.0 <= fidelity <= 1.0:
            raise SimulationError("fidelity must be in [0, 1]")
        phi_plus = np.zeros(4, dtype=complex)
        phi_plus[0] = phi_plus[3] = 1.0 / np.sqrt(2.0)
        proj = np.outer(phi_plus, phi_plus.conj())
        rest = (np.eye(4, dtype=complex) - proj) / 3.0
        return cls(fidelity * proj + (1.0 - fidelity) * rest, validate=False)

    # -- properties ----------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return int(self._rho.shape[0]).bit_length() - 1

    @property
    def dim(self) -> int:
        return int(self._rho.shape[0])

    @property
    def matrix(self) -> np.ndarray:
        return self._rho

    def copy(self) -> "DensityMatrix":
        return DensityMatrix(self._rho.copy(), validate=False)

    def purity(self) -> float:
        """``Tr(rho^2)`` — 1 for pure states, ``1/2**n`` for maximally mixed."""
        return float(np.real(np.trace(self._rho @ self._rho)))

    def probabilities(self) -> np.ndarray:
        """Z-basis outcome probabilities (the diagonal of rho)."""
        return np.real(np.diag(self._rho)).clip(min=0.0)

    # -- evolution -----------------------------------------------------------

    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> "DensityMatrix":
        """Conjugate by a unitary on ``qubits``, in place."""
        self._rho = _apply_matrix_tensor(self._rho, self.num_qubits, np.asarray(matrix, dtype=complex), list(qubits))
        return self

    def apply_gate(self, gate, qubits: Sequence[int]) -> "DensityMatrix":
        if gate.num_qubits != len(qubits):
            raise SimulationError("gate arity does not match target count")
        return self.apply_matrix(gate.matrix, qubits)

    def apply_kraus(self, kraus_ops: Sequence[np.ndarray], qubits: Sequence[int]) -> "DensityMatrix":
        """Apply a CPTP channel given by Kraus operators on ``qubits``."""
        qubits = list(qubits)
        acc = np.zeros_like(self._rho)
        for kraus in kraus_ops:
            acc = acc + _apply_matrix_tensor(self._rho, self.num_qubits, np.asarray(kraus, dtype=complex), qubits)
        self._rho = acc
        return self

    # -- measurement / metrics -----------------------------------------------

    def measure(self, qubits: "Sequence[int] | None" = None, rng=None) -> tuple[tuple[int, ...], "DensityMatrix"]:
        """Projective Z-basis measurement of ``qubits`` (default all)."""
        rng = ensure_rng(rng)
        n = self.num_qubits
        if qubits is None:
            qubits = list(range(n))
        qubits = list(qubits)
        probs = self.probabilities()
        indices = np.arange(self.dim)
        outcome_probs = np.zeros(2 ** len(qubits))
        patterns = []
        for pat in range(2 ** len(qubits)):
            mask = np.ones(self.dim, dtype=bool)
            for pos, q in enumerate(qubits):
                bit = (pat >> (len(qubits) - 1 - pos)) & 1
                mask &= ((indices >> (n - 1 - q)) & 1) == bit
            patterns.append(mask)
            outcome_probs[pat] = probs[mask].sum()
        outcome_probs = outcome_probs / outcome_probs.sum()
        pat = int(rng.choice(len(outcome_probs), p=outcome_probs))
        bits = tuple((pat >> (len(qubits) - 1 - i)) & 1 for i in range(len(qubits)))
        mask = patterns[pat]
        proj = np.where(mask, 1.0, 0.0)
        post = self._rho * np.outer(proj, proj)
        tr = np.trace(post).real
        if tr < _ATOL:
            raise SimulationError("measurement collapsed onto a zero-probability branch")
        return bits, DensityMatrix(post / tr, validate=False)

    def sample_counts(self, shots: int, rng=None) -> dict[str, int]:
        """Sample Z-basis outcomes on all qubits without collapsing."""
        rng = ensure_rng(rng)
        probs = self.probabilities()
        probs = probs / probs.sum()
        draws = rng.multinomial(shots, probs)
        return {
            index_to_bitstring(i, self.num_qubits): int(c)
            for i, c in enumerate(draws)
            if c > 0
        }

    def fidelity_with_pure(self, state: Statevector) -> float:
        """``<psi| rho |psi>`` — fidelity against a pure reference state."""
        if state.dim != self.dim:
            raise SimulationError("dimension mismatch")
        return float(np.real(np.vdot(state.data, self._rho @ state.data)))

    def expectation(self, observable: np.ndarray) -> float:
        """``Tr(rho M)`` for a Hermitian matrix observable."""
        observable = np.asarray(observable, dtype=complex)
        return float(np.real(np.trace(self._rho @ observable)))

    def partial_trace(self, keep: Sequence[int]) -> "DensityMatrix":
        """Reduced state over the ``keep`` qubits."""
        n = self.num_qubits
        keep = list(keep)
        drop = [q for q in range(n) if q not in keep]
        tensor = self._rho.reshape((2,) * (2 * n))
        for q in sorted(drop, reverse=True):
            tensor = np.trace(tensor, axis1=q, axis2=q + tensor.ndim // 2)
        dim = 2 ** len(keep)
        return DensityMatrix(tensor.reshape(dim, dim), validate=False)

    def tensor(self, other: "DensityMatrix") -> "DensityMatrix":
        """``self (x) other`` (self's qubits first)."""
        return DensityMatrix(np.kron(self._rho, other._rho), validate=False)


class DensitySimulator:
    """Runs circuits on density matrices, optionally inserting noise."""

    def __init__(self, max_qubits: int = 10):
        self.max_qubits = max_qubits

    def run(
        self,
        circuit: QuantumCircuit,
        noise_model=None,
        initial_state: "DensityMatrix | None" = None,
    ) -> DensityMatrix:
        """Apply gates (and the noise model's channels after each gate)."""
        if circuit.num_qubits > self.max_qubits:
            raise SimulationError(
                f"density simulation limited to {self.max_qubits} qubits, circuit has {circuit.num_qubits}"
            )
        if initial_state is None:
            rho = DensityMatrix.zero_state(circuit.num_qubits)
        else:
            if initial_state.num_qubits != circuit.num_qubits:
                raise SimulationError("initial state width does not match circuit")
            rho = initial_state.copy()
        for op in circuit:
            rho.apply_matrix(op.gate.matrix, op.qubits)
            if noise_model is not None:
                for kraus_ops, qubits in noise_model.channels_after(op):
                    rho.apply_kraus(kraus_ops, qubits)
        return rho
