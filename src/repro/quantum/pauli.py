"""Pauli-string algebra and diagonal Ising Hamiltonians.

Two operator families cover everything the library needs:

* :class:`PauliString` / :class:`PauliSum` — general observables used by VQE
  and the nonlocal-games modules.
* :class:`IsingHamiltonian` — diagonal ``sum h_i Z_i + sum J_ij Z_i Z_j``
  cost Hamiltonians produced from QUBO models and consumed by QAOA/VQE.

Spin convention: the computational basis state ``|0>`` has spin ``s = +1``
(eigenvalue of Z), ``|1>`` has ``s = -1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.exceptions import SimulationError
from repro.quantum.gates import I_MATRIX, X_MATRIX, Y_MATRIX, Z_MATRIX

_PAULI_MATRICES = {"I": I_MATRIX, "X": X_MATRIX, "Y": Y_MATRIX, "Z": Z_MATRIX}


@dataclass(frozen=True)
class PauliString:
    """A tensor product of single-qubit Paulis with a complex coefficient.

    ``PauliString("XIZ", 0.5)`` means ``0.5 * X(0) (x) I(1) (x) Z(2)``.
    """

    string: str
    coefficient: complex = 1.0

    def __post_init__(self) -> None:
        if not self.string or any(c not in "IXYZ" for c in self.string):
            raise SimulationError(f"invalid Pauli string {self.string!r}")

    @property
    def num_qubits(self) -> int:
        return len(self.string)

    @property
    def weight(self) -> int:
        """Number of non-identity factors."""
        return sum(1 for c in self.string if c != "I")

    def is_diagonal(self) -> bool:
        """True when the string contains only I and Z (a diagonal operator)."""
        return all(c in "IZ" for c in self.string)

    def matrix(self) -> np.ndarray:
        """Dense matrix (use only for small qubit counts)."""
        mat = np.array([[1.0]], dtype=complex)
        for c in self.string:
            mat = np.kron(mat, _PAULI_MATRICES[c])
        return self.coefficient * mat

    def diagonal(self) -> np.ndarray:
        """Diagonal vector for I/Z-only strings (raises otherwise)."""
        if not self.is_diagonal():
            raise SimulationError(f"Pauli string {self.string} is not diagonal")
        diag = np.array([1.0], dtype=float)
        for c in self.string:
            factor = np.array([1.0, 1.0]) if c == "I" else np.array([1.0, -1.0])
            diag = np.kron(diag, factor)
        return self.coefficient.real * diag if np.isreal(self.coefficient) else self.coefficient * diag

    def commutes_with(self, other: "PauliString") -> bool:
        """Whether the two strings commute as operators."""
        if other.num_qubits != self.num_qubits:
            raise SimulationError("Pauli strings act on different register widths")
        anti = sum(
            1
            for a, b in zip(self.string, other.string)
            if a != "I" and b != "I" and a != b
        )
        return anti % 2 == 0

    def __mul__(self, scalar: complex) -> "PauliString":
        return PauliString(self.string, self.coefficient * scalar)

    __rmul__ = __mul__


class PauliSum:
    """A linear combination of Pauli strings over a common register."""

    def __init__(self, terms: Iterable[PauliString]):
        terms = list(terms)
        if not terms:
            raise SimulationError("PauliSum needs at least one term")
        width = terms[0].num_qubits
        for t in terms:
            if t.num_qubits != width:
                raise SimulationError("all Pauli terms must share the register width")
        self.terms = terms
        self.num_qubits = width

    def matrix(self) -> np.ndarray:
        """Dense Hermitian matrix of the sum."""
        return sum(t.matrix() for t in self.terms)

    def is_diagonal(self) -> bool:
        return all(t.is_diagonal() for t in self.terms)

    def diagonal(self) -> np.ndarray:
        """Diagonal vector when every term is I/Z-only."""
        diag = np.zeros(2**self.num_qubits, dtype=float)
        for t in self.terms:
            diag = diag + np.real(t.diagonal())
        return diag

    def expectation(self, state) -> float:
        """``<psi|H|psi>`` with a fast path for diagonal sums."""
        if self.is_diagonal():
            return state.expectation_diagonal(self.diagonal())
        return float(np.real(state.expectation_matrix(self.matrix())))

    def __add__(self, other: "PauliSum") -> "PauliSum":
        return PauliSum(self.terms + other.terms)

    def __len__(self) -> int:
        return len(self.terms)


def _bits_matrix(num_qubits: int) -> np.ndarray:
    """(2^n, n) matrix of bit values; column j is the bit of qubit j."""
    indices = np.arange(2**num_qubits)
    shifts = np.array([num_qubits - 1 - j for j in range(num_qubits)])
    return (indices[:, None] >> shifts[None, :]) & 1


@dataclass
class IsingHamiltonian:
    """Diagonal Hamiltonian ``sum_i h_i Z_i + sum_{i<j} J_ij Z_i Z_j + offset``.

    This is the gate-model form of a QUBO: minimising the QUBO over binary
    ``x`` is the same as finding the ground state here, with
    ``x_i = (1 - s_i)/2``.
    """

    num_qubits: int
    linear: dict[int, float] = field(default_factory=dict)
    quadratic: dict[tuple[int, int], float] = field(default_factory=dict)
    offset: float = 0.0

    def __post_init__(self) -> None:
        for i in self.linear:
            if not 0 <= i < self.num_qubits:
                raise SimulationError(f"linear index {i} out of range")
        canonical: dict[tuple[int, int], float] = {}
        for (i, j), v in self.quadratic.items():
            if i == j:
                raise SimulationError("quadratic terms need two distinct qubits")
            if not (0 <= i < self.num_qubits and 0 <= j < self.num_qubits):
                raise SimulationError(f"quadratic index ({i},{j}) out of range")
            key = (min(i, j), max(i, j))
            canonical[key] = canonical.get(key, 0.0) + float(v)
        self.quadratic = canonical

    def energies(self) -> np.ndarray:
        """Energy of every computational basis state (length ``2**n``)."""
        bits = _bits_matrix(self.num_qubits)
        spins = 1.0 - 2.0 * bits
        energy = np.full(2**self.num_qubits, self.offset, dtype=float)
        for i, h in self.linear.items():
            energy += h * spins[:, i]
        for (i, j), jij in self.quadratic.items():
            energy += jij * spins[:, i] * spins[:, j]
        return energy

    def energy_of_spins(self, spins: "np.ndarray | list[int]") -> float:
        """Energy of one spin configuration (entries in {+1, -1})."""
        spins = np.asarray(spins, dtype=float)
        energy = self.offset
        for i, h in self.linear.items():
            energy += h * spins[i]
        for (i, j), jij in self.quadratic.items():
            energy += jij * spins[i] * spins[j]
        return float(energy)

    def energy_of_bits(self, bits: "np.ndarray | list[int]") -> float:
        """Energy of one bit configuration (entries in {0, 1})."""
        spins = 1.0 - 2.0 * np.asarray(bits, dtype=float)
        return self.energy_of_spins(spins)

    def ground(self) -> tuple[float, int]:
        """Exact ground energy and the basis index attaining it."""
        energies = self.energies()
        idx = int(np.argmin(energies))
        return float(energies[idx]), idx

    def to_pauli_sum(self) -> PauliSum:
        """The same operator as an explicit :class:`PauliSum`."""
        terms: list[PauliString] = []
        identity = "I" * self.num_qubits
        if self.offset:
            terms.append(PauliString(identity, self.offset))
        for i, h in self.linear.items():
            s = identity[:i] + "Z" + identity[i + 1 :]
            terms.append(PauliString(s, h))
        for (i, j), jij in self.quadratic.items():
            chars = list(identity)
            chars[i] = "Z"
            chars[j] = "Z"
            terms.append(PauliString("".join(chars), jij))
        if not terms:
            terms.append(PauliString(identity, 0.0))
        return PauliSum(terms)

    def expectation(self, state) -> float:
        """``<psi|H|psi>`` via the precomputed diagonal."""
        return state.expectation_diagonal(self.energies())
