"""Quantum circuit intermediate representation.

A :class:`QuantumCircuit` is an ordered list of :class:`Operation` records
(gate + target qubits).  Circuits here are purely unitary: measurement and
classical control live in :class:`~repro.quantum.state.Statevector` and the
protocol modules (e.g. teleportation), which keeps the simulator simple and
matches how the deferred-measurement principle is normally applied.

Parameterised ansätze (QAOA, VQE, VQC) are built as plain Python functions
``params -> QuantumCircuit``; see :mod:`repro.algorithms`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.quantum import gates as G
from repro.quantum.gates import Gate, controlled, diagonal_gate, standard_gate


@dataclass(frozen=True)
class Operation:
    """One gate application inside a circuit."""

    gate: Gate
    qubits: tuple[int, ...]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        qs = ",".join(str(q) for q in self.qubits)
        return f"{self.gate.name}[{qs}]"


class QuantumCircuit:
    """A sequence of gates on a fixed-width qubit register."""

    def __init__(self, num_qubits: int, name: str = "circuit"):
        if num_qubits < 1:
            raise SimulationError("circuit needs at least one qubit")
        self.num_qubits = num_qubits
        self.name = name
        self._ops: list[Operation] = []

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops)

    @property
    def operations(self) -> tuple[Operation, ...]:
        """The gate sequence as an immutable tuple."""
        return tuple(self._ops)

    def size(self) -> int:
        """Total number of gate applications."""
        return len(self._ops)

    def depth(self) -> int:
        """Circuit depth: length of the critical path over shared qubits."""
        level = [0] * self.num_qubits
        depth = 0
        for op in self._ops:
            start = max(level[q] for q in op.qubits)
            for q in op.qubits:
                level[q] = start + 1
            depth = max(depth, start + 1)
        return depth

    def count_ops(self) -> dict[str, int]:
        """Histogram of gate names."""
        counts: dict[str, int] = {}
        for op in self._ops:
            counts[op.gate.name] = counts.get(op.gate.name, 0) + 1
        return counts

    # -- building ------------------------------------------------------------

    def append(self, gate: Gate, qubits: Sequence[int]) -> "QuantumCircuit":
        """Append ``gate`` acting on ``qubits``; returns self for chaining."""
        qubits = tuple(int(q) for q in qubits)
        if len(qubits) != gate.num_qubits:
            raise SimulationError(
                f"gate {gate.name!r} needs {gate.num_qubits} qubit(s), got {len(qubits)}"
            )
        if len(set(qubits)) != len(qubits):
            raise SimulationError(f"duplicate qubits {qubits} for gate {gate.name!r}")
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise SimulationError(f"qubit {q} out of range (width {self.num_qubits})")
        self._ops.append(Operation(gate, qubits))
        return self

    # Named helpers for the common gates ------------------------------------

    def i(self, q: int) -> "QuantumCircuit":
        return self.append(standard_gate("i"), (q,))

    def x(self, q: int) -> "QuantumCircuit":
        return self.append(standard_gate("x"), (q,))

    def y(self, q: int) -> "QuantumCircuit":
        return self.append(standard_gate("y"), (q,))

    def z(self, q: int) -> "QuantumCircuit":
        return self.append(standard_gate("z"), (q,))

    def h(self, q: int) -> "QuantumCircuit":
        return self.append(standard_gate("h"), (q,))

    def s(self, q: int) -> "QuantumCircuit":
        return self.append(standard_gate("s"), (q,))

    def sdg(self, q: int) -> "QuantumCircuit":
        return self.append(standard_gate("sdg"), (q,))

    def t(self, q: int) -> "QuantumCircuit":
        return self.append(standard_gate("t"), (q,))

    def tdg(self, q: int) -> "QuantumCircuit":
        return self.append(standard_gate("tdg"), (q,))

    def rx(self, theta: float, q: int) -> "QuantumCircuit":
        return self.append(standard_gate("rx", theta), (q,))

    def ry(self, theta: float, q: int) -> "QuantumCircuit":
        return self.append(standard_gate("ry", theta), (q,))

    def rz(self, theta: float, q: int) -> "QuantumCircuit":
        return self.append(standard_gate("rz", theta), (q,))

    def p(self, phi: float, q: int) -> "QuantumCircuit":
        return self.append(standard_gate("p", phi), (q,))

    def u3(self, theta: float, phi: float, lam: float, q: int) -> "QuantumCircuit":
        return self.append(standard_gate("u3", theta, phi, lam), (q,))

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        return self.append(standard_gate("swap"), (a, b))

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(controlled(standard_gate("x")), (control, target))

    def cy(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(controlled(standard_gate("y")), (control, target))

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(controlled(standard_gate("z")), (control, target))

    def ch(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(controlled(standard_gate("h")), (control, target))

    def cp(self, phi: float, control: int, target: int) -> "QuantumCircuit":
        return self.append(controlled(standard_gate("p", phi)), (control, target))

    def crz(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.append(controlled(standard_gate("rz", theta)), (control, target))

    def cry(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.append(controlled(standard_gate("ry", theta)), (control, target))

    def ccx(self, c1: int, c2: int, target: int) -> "QuantumCircuit":
        return self.append(controlled(standard_gate("x"), num_controls=2), (c1, c2, target))

    def mcx(self, controls: Sequence[int], target: int) -> "QuantumCircuit":
        """Multi-controlled X with arbitrarily many controls."""
        gate = controlled(standard_gate("x"), num_controls=len(controls))
        return self.append(gate, (*controls, target))

    def mcz(self, qubits: Sequence[int]) -> "QuantumCircuit":
        """Multi-controlled Z over all the listed qubits (symmetric)."""
        if len(qubits) == 1:
            return self.z(qubits[0])
        gate = controlled(standard_gate("z"), num_controls=len(qubits) - 1)
        return self.append(gate, tuple(qubits))

    def rzz(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        return self.append(standard_gate("rzz", theta), (a, b))

    def rxx(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        return self.append(standard_gate("rxx", theta), (a, b))

    def diagonal(self, phases: "np.ndarray | list[float]", qubits: Sequence[int], name: str = "diag") -> "QuantumCircuit":
        """Apply a diagonal phase unitary over the listed qubits."""
        return self.append(diagonal_gate(phases, name=name), tuple(qubits))

    def unitary(self, matrix: np.ndarray, qubits: Sequence[int], name: str = "unitary") -> "QuantumCircuit":
        """Append an arbitrary unitary matrix."""
        return self.append(Gate(name, np.asarray(matrix, dtype=complex)), tuple(qubits))

    def h_all(self) -> "QuantumCircuit":
        """Hadamard on every qubit (the uniform-superposition prefix)."""
        for q in range(self.num_qubits):
            self.h(q)
        return self

    def barrier(self) -> "QuantumCircuit":
        """No-op kept for readability of long builder chains."""
        return self

    # -- composition ---------------------------------------------------------

    def compose(self, other: "QuantumCircuit", qubits: "Sequence[int] | None" = None) -> "QuantumCircuit":
        """Append all of ``other``'s gates (optionally remapped to ``qubits``)."""
        if qubits is None:
            mapping = list(range(other.num_qubits))
        else:
            mapping = list(qubits)
        if len(mapping) != other.num_qubits:
            raise SimulationError("qubit mapping width mismatch in compose")
        for op in other:
            self.append(op.gate, tuple(mapping[q] for q in op.qubits))
        return self

    def inverse(self) -> "QuantumCircuit":
        """The adjoint circuit (gates inverted, order reversed)."""
        inv = QuantumCircuit(self.num_qubits, name=f"{self.name}_dg")
        for op in reversed(self._ops):
            inv.append(op.gate.inverse(), op.qubits)
        return inv

    def copy(self) -> "QuantumCircuit":
        """A shallow copy (gates are immutable, so sharing them is safe)."""
        dup = QuantumCircuit(self.num_qubits, name=self.name)
        dup._ops = list(self._ops)
        return dup

    def power(self, exponent: int) -> "QuantumCircuit":
        """The circuit repeated ``exponent`` times (``exponent >= 0``)."""
        if exponent < 0:
            raise SimulationError("negative powers: call inverse() first")
        out = QuantumCircuit(self.num_qubits, name=f"{self.name}^{exponent}")
        for _ in range(exponent):
            out.compose(self)
        return out

    # -- dense form ----------------------------------------------------------

    def to_matrix(self) -> np.ndarray:
        """The full ``2**n x 2**n`` unitary of the circuit (small n only)."""
        if self.num_qubits > 12:
            raise SimulationError("to_matrix is limited to 12 qubits")
        from repro.quantum.state import apply_unitary  # local to avoid cycle at import

        dim = 2**self.num_qubits
        mat = np.eye(dim, dtype=complex)
        for col in range(dim):
            vec = mat[:, col].copy()
            for op in self._ops:
                vec = apply_unitary(vec, self.num_qubits, op.gate.matrix, list(op.qubits))
            mat[:, col] = vec
        return mat

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QuantumCircuit({self.name!r}, {self.num_qubits}q, {len(self._ops)} ops)"
