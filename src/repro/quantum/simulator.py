"""Exact statevector simulation of :class:`~repro.quantum.circuit.QuantumCircuit`."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.state import Statevector
from repro.utils.rngtools import ensure_rng


class StatevectorSimulator:
    """Runs unitary circuits exactly on a statevector.

    The simulator is stateless; all methods are pure given their inputs plus
    the supplied RNG.  Practical limit is ~20 qubits (16 M amplitudes).
    """

    def __init__(self, max_qubits: int = 24):
        self.max_qubits = max_qubits

    def run(self, circuit: QuantumCircuit, initial_state: "Statevector | None" = None) -> Statevector:
        """Apply every gate of ``circuit`` and return the final state."""
        if circuit.num_qubits > self.max_qubits:
            raise SimulationError(
                f"circuit has {circuit.num_qubits} qubits, simulator limit is {self.max_qubits}"
            )
        if initial_state is None:
            state = Statevector.zero_state(circuit.num_qubits)
        else:
            if initial_state.num_qubits != circuit.num_qubits:
                raise SimulationError("initial state width does not match circuit")
            state = initial_state.copy()
        for op in circuit:
            state.apply_matrix(op.gate.matrix, op.qubits)
        return state

    def sample(
        self,
        circuit: QuantumCircuit,
        shots: int,
        rng=None,
        qubits: "Sequence[int] | None" = None,
        initial_state: "Statevector | None" = None,
    ) -> dict[str, int]:
        """Run the circuit and sample measurement outcomes ``shots`` times."""
        rng = ensure_rng(rng)
        state = self.run(circuit, initial_state=initial_state)
        return state.sample_counts(shots, rng=rng, qubits=qubits)

    def expectation(
        self,
        circuit: QuantumCircuit,
        observable,
        initial_state: "Statevector | None" = None,
    ) -> float:
        """Expectation value of ``observable`` in the circuit's output state.

        ``observable`` may be a :class:`~repro.quantum.pauli.PauliSum`, a
        real diagonal vector, or a dense Hermitian matrix.
        """
        from repro.quantum.measurement import expectation_value

        state = self.run(circuit, initial_state=initial_state)
        return expectation_value(state, observable)
