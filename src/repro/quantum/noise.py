"""Kraus noise channels and per-gate noise models (Sec. III-C.3 of the paper:
"noisy operations" as a practical constraint of NISQ machines)."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.quantum.circuit import Operation
from repro.quantum.gates import I_MATRIX, X_MATRIX, Y_MATRIX, Z_MATRIX

KrausOps = list[np.ndarray]


def _check_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise SimulationError(f"probability {p} outside [0, 1]")


def bit_flip(p: float) -> KrausOps:
    """Flip X with probability ``p``."""
    _check_probability(p)
    return [math.sqrt(1 - p) * I_MATRIX, math.sqrt(p) * X_MATRIX]


def phase_flip(p: float) -> KrausOps:
    """Apply Z with probability ``p``."""
    _check_probability(p)
    return [math.sqrt(1 - p) * I_MATRIX, math.sqrt(p) * Z_MATRIX]


def depolarizing(p: float, num_qubits: int = 1) -> KrausOps:
    """Depolarizing channel: with probability ``p`` replace by random Pauli.

    For ``num_qubits == 2`` the 16 two-qubit Pauli products are used.
    """
    _check_probability(p)
    singles = [I_MATRIX, X_MATRIX, Y_MATRIX, Z_MATRIX]
    if num_qubits == 1:
        paulis = singles
    elif num_qubits == 2:
        paulis = [np.kron(a, b) for a in singles for b in singles]
    else:
        raise SimulationError("depolarizing supports 1 or 2 qubits")
    d2 = len(paulis)
    ops = [math.sqrt(1 - p * (d2 - 1) / d2) * paulis[0]]
    ops.extend(math.sqrt(p / d2) * mat for mat in paulis[1:])
    return ops


def amplitude_damping(gamma: float) -> KrausOps:
    """Energy relaxation (T1 decay) with damping rate ``gamma``."""
    _check_probability(gamma)
    k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=complex)
    return [k0, k1]


def phase_damping(lam: float) -> KrausOps:
    """Pure dephasing (T2) with rate ``lam``."""
    _check_probability(lam)
    k0 = np.array([[1, 0], [0, math.sqrt(1 - lam)]], dtype=complex)
    k1 = np.array([[0, 0], [0, math.sqrt(lam)]], dtype=complex)
    return [k0, k1]


def is_cptp(kraus_ops: Iterable[np.ndarray], atol: float = 1e-9) -> bool:
    """Completeness check: ``sum_k K^dagger K == I``."""
    kraus_ops = list(kraus_ops)
    dim = kraus_ops[0].shape[1]
    acc = np.zeros((dim, dim), dtype=complex)
    for k in kraus_ops:
        acc = acc + k.conj().T @ k
    return bool(np.allclose(acc, np.eye(dim), atol=atol))


class NoiseModel:
    """Attaches Kraus channels after gates, keyed by gate arity or name.

    Args:
        error_1q: channel applied after every 1-qubit gate (per target).
        error_2q: channel (1- or 2-qubit Kraus set) applied after every gate
            touching 2+ qubits.  A 1-qubit Kraus set is applied to each
            involved qubit independently.
        gate_errors: overrides keyed by gate name.
    """

    def __init__(
        self,
        error_1q: "KrausOps | None" = None,
        error_2q: "KrausOps | None" = None,
        gate_errors: "dict[str, KrausOps] | None" = None,
    ):
        for ops in filter(None, [error_1q, error_2q, *(gate_errors or {}).values()]):
            if not is_cptp(ops):
                raise SimulationError("Kraus set is not trace preserving")
        self.error_1q = error_1q
        self.error_2q = error_2q
        self.gate_errors = dict(gate_errors or {})

    @classmethod
    def uniform_depolarizing(cls, p1: float, p2: "float | None" = None) -> "NoiseModel":
        """Depolarizing noise after every gate (the standard NISQ proxy)."""
        if p2 is None:
            p2 = min(1.0, 10.0 * p1)
        return cls(error_1q=depolarizing(p1), error_2q=depolarizing(p2, num_qubits=2))

    def channels_after(self, op: Operation) -> list[tuple[KrausOps, tuple[int, ...]]]:
        """Channels (with their target qubits) to apply after ``op``."""
        chosen: "KrausOps | None"
        if op.gate.name in self.gate_errors:
            chosen = self.gate_errors[op.gate.name]
        elif len(op.qubits) == 1:
            chosen = self.error_1q
        else:
            chosen = self.error_2q
        if chosen is None:
            return []
        channel_arity = int(chosen[0].shape[0]).bit_length() - 1
        if channel_arity == len(op.qubits):
            return [(chosen, op.qubits)]
        if channel_arity == 1:
            return [(chosen, (q,)) for q in op.qubits]
        if channel_arity == 2 and len(op.qubits) > 2:
            # Fall back to acting on the first two involved qubits.
            return [(chosen, op.qubits[:2])]
        raise SimulationError(
            f"channel arity {channel_arity} incompatible with gate on {len(op.qubits)} qubits"
        )
