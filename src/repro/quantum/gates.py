"""Gate library: unitary matrices and the :class:`Gate` wrapper.

Gates are plain unitary matrices tagged with a name and the parameters used
to build them.  Controlled and multi-controlled versions of any gate are
constructed with :func:`controlled`.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SimulationError

_SQRT2 = math.sqrt(2.0)

# ---------------------------------------------------------------------------
# Fixed single-qubit matrices
# ---------------------------------------------------------------------------

I_MATRIX = np.eye(2, dtype=complex)
X_MATRIX = np.array([[0, 1], [1, 0]], dtype=complex)
Y_MATRIX = np.array([[0, -1j], [1j, 0]], dtype=complex)
Z_MATRIX = np.array([[1, 0], [0, -1]], dtype=complex)
H_MATRIX = np.array([[1, 1], [1, -1]], dtype=complex) / _SQRT2
S_MATRIX = np.array([[1, 0], [0, 1j]], dtype=complex)
SDG_MATRIX = np.array([[1, 0], [0, -1j]], dtype=complex)
T_MATRIX = np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)
TDG_MATRIX = np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex)

SWAP_MATRIX = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)


def rx_matrix(theta: float) -> np.ndarray:
    """Rotation about the X axis by angle ``theta``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def ry_matrix(theta: float) -> np.ndarray:
    """Rotation about the Y axis by angle ``theta``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rz_matrix(theta: float) -> np.ndarray:
    """Rotation about the Z axis by angle ``theta``."""
    return np.array(
        [[cmath.exp(-1j * theta / 2), 0], [0, cmath.exp(1j * theta / 2)]],
        dtype=complex,
    )


def phase_matrix(phi: float) -> np.ndarray:
    """Phase gate ``diag(1, e^{i phi})``."""
    return np.array([[1, 0], [0, cmath.exp(1j * phi)]], dtype=complex)


def u3_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    """General single-qubit rotation (the IBM ``U3`` convention)."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [c, -cmath.exp(1j * lam) * s],
            [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def rzz_matrix(theta: float) -> np.ndarray:
    """Two-qubit ``exp(-i theta/2 Z(x)Z)`` interaction (diagonal)."""
    plus = cmath.exp(-1j * theta / 2)
    minus = cmath.exp(1j * theta / 2)
    return np.diag([plus, minus, minus, plus]).astype(complex)


def rxx_matrix(theta: float) -> np.ndarray:
    """Two-qubit ``exp(-i theta/2 X(x)X)`` interaction."""
    c = math.cos(theta / 2)
    s = -1j * math.sin(theta / 2)
    mat = np.eye(4, dtype=complex) * c
    mat[0, 3] = mat[3, 0] = mat[1, 2] = mat[2, 1] = s
    return mat


def diagonal_matrix(phases: np.ndarray) -> np.ndarray:
    """Diagonal unitary ``diag(e^{i phases})`` over ``len(phases)`` states."""
    return np.diag(np.exp(1j * np.asarray(phases, dtype=float))).astype(complex)


# ---------------------------------------------------------------------------
# Gate wrapper
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Gate:
    """A named unitary acting on ``num_qubits`` qubits.

    Attributes:
        name: Human-readable mnemonic, e.g. ``"h"`` or ``"rzz"``.
        matrix: ``(2^k, 2^k)`` complex unitary.
        params: Parameters the matrix was built from (for display/inverse).
    """

    name: str
    matrix: np.ndarray
    params: tuple[float, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        mat = np.asarray(self.matrix, dtype=complex)
        dim = mat.shape[0]
        if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
            raise SimulationError(f"gate {self.name!r}: matrix must be square")
        if dim == 0 or dim & (dim - 1):
            raise SimulationError(f"gate {self.name!r}: dimension {dim} is not a power of 2")
        object.__setattr__(self, "matrix", mat)

    @property
    def num_qubits(self) -> int:
        """Number of qubits the gate acts on."""
        return int(self.matrix.shape[0]).bit_length() - 1

    def is_unitary(self, atol: float = 1e-9) -> bool:
        """Check unitarity ``U U^dagger = I`` up to ``atol``."""
        prod = self.matrix @ self.matrix.conj().T
        return bool(np.allclose(prod, np.eye(self.matrix.shape[0]), atol=atol))

    def inverse(self) -> "Gate":
        """Return the adjoint gate."""
        return Gate(f"{self.name}_dg", self.matrix.conj().T, self.params)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.params:
            args = ", ".join(f"{p:.4g}" for p in self.params)
            return f"Gate({self.name}({args}), {self.num_qubits}q)"
        return f"Gate({self.name}, {self.num_qubits}q)"


_FIXED_GATES: dict[str, np.ndarray] = {
    "i": I_MATRIX,
    "x": X_MATRIX,
    "y": Y_MATRIX,
    "z": Z_MATRIX,
    "h": H_MATRIX,
    "s": S_MATRIX,
    "sdg": SDG_MATRIX,
    "t": T_MATRIX,
    "tdg": TDG_MATRIX,
    "swap": SWAP_MATRIX,
}

_PARAMETRIC_GATES = {
    "rx": (rx_matrix, 1),
    "ry": (ry_matrix, 1),
    "rz": (rz_matrix, 1),
    "p": (phase_matrix, 1),
    "u3": (u3_matrix, 3),
    "rzz": (rzz_matrix, 1),
    "rxx": (rxx_matrix, 1),
}


def standard_gate(name: str, *params: float) -> Gate:
    """Build a standard gate by name.

    Fixed gates (``x``, ``h``, ``swap``, ...) take no parameters; rotation
    gates (``rx``, ``rz``, ``rzz``, ...) take the angles listed in
    ``_PARAMETRIC_GATES``.

    >>> standard_gate("h").num_qubits
    1
    >>> standard_gate("rzz", 0.5).num_qubits
    2
    """
    key = name.lower()
    if key in _FIXED_GATES:
        if params:
            raise SimulationError(f"gate {name!r} takes no parameters")
        return Gate(key, _FIXED_GATES[key])
    if key in _PARAMETRIC_GATES:
        builder, arity = _PARAMETRIC_GATES[key]
        if len(params) != arity:
            raise SimulationError(f"gate {name!r} expects {arity} parameter(s), got {len(params)}")
        return Gate(key, builder(*params), tuple(float(p) for p in params))
    raise SimulationError(f"unknown gate {name!r}")


def controlled(gate: Gate, num_controls: int = 1) -> Gate:
    """Return the ``num_controls``-controlled version of ``gate``.

    The control qubits are the *first* ``num_controls`` qubits of the
    resulting gate; the target block occupies the last ``gate.num_qubits``.

    >>> cx = controlled(standard_gate("x"))
    >>> cx.num_qubits
    2
    """
    if num_controls < 1:
        raise SimulationError("num_controls must be >= 1")
    dim = gate.matrix.shape[0]
    total = dim * (2**num_controls)
    mat = np.eye(total, dtype=complex)
    mat[total - dim :, total - dim :] = gate.matrix
    prefix = "c" * num_controls
    return Gate(f"{prefix}{gate.name}", mat, gate.params)


def cnot_gate() -> Gate:
    """Controlled-X (control = qubit 0, target = qubit 1)."""
    return controlled(standard_gate("x"))


def cz_gate() -> Gate:
    """Controlled-Z."""
    return controlled(standard_gate("z"))


def toffoli_gate() -> Gate:
    """Doubly-controlled X."""
    return controlled(standard_gate("x"), num_controls=2)


def diagonal_gate(phases: "np.ndarray | list[float]", name: str = "diag") -> Gate:
    """Diagonal unitary with the given per-basis-state phases (radians)."""
    phases = np.asarray(phases, dtype=float)
    return Gate(name, diagonal_matrix(phases))
