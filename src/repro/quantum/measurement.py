"""Measurement post-processing and expectation values."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.quantum.pauli import PauliSum
from repro.quantum.state import Statevector
from repro.utils.rngtools import ensure_rng


def sample_counts(
    state: Statevector,
    shots: int,
    rng=None,
    qubits: "Sequence[int] | None" = None,
) -> dict[str, int]:
    """Sample ``shots`` Z-basis measurements from ``state``."""
    return state.sample_counts(shots, rng=ensure_rng(rng), qubits=qubits)


def counts_to_probabilities(counts: Mapping[str, int]) -> dict[str, float]:
    """Normalise a counts dict into empirical probabilities."""
    total = sum(counts.values())
    if total <= 0:
        raise SimulationError("counts are empty")
    return {k: v / total for k, v in counts.items()}


def expectation_value(state: Statevector, observable) -> float:
    """Expectation of ``observable`` in ``state``.

    ``observable`` may be:

    * a :class:`~repro.quantum.pauli.PauliSum` (fast diagonal path),
    * an object with an ``expectation(state)`` method (e.g.
      :class:`~repro.quantum.pauli.IsingHamiltonian`),
    * a 1-D real array, treated as a diagonal observable,
    * a 2-D Hermitian matrix.
    """
    if isinstance(observable, PauliSum):
        return observable.expectation(state)
    if hasattr(observable, "expectation"):
        return float(observable.expectation(state))
    arr = np.asarray(observable)
    if arr.ndim == 1:
        return state.expectation_diagonal(arr)
    if arr.ndim == 2:
        return float(np.real(state.expectation_matrix(arr)))
    raise SimulationError("unsupported observable type")


def expectation_from_counts(counts: Mapping[str, int], diagonal: np.ndarray) -> float:
    """Estimate a diagonal observable's expectation from sampled counts."""
    total = sum(counts.values())
    if total <= 0:
        raise SimulationError("counts are empty")
    acc = 0.0
    for bitstring, c in counts.items():
        acc += diagonal[int(bitstring, 2)] * c
    return acc / total
