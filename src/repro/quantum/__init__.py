"""Gate-model quantum computing substrate.

This subpackage is the from-scratch replacement for Qiskit/Cirq that the
paper's surveyed prototypes rely on: a circuit IR (:mod:`.circuit`), a gate
library (:mod:`.gates`), an exact statevector simulator (:mod:`.state`,
:mod:`.simulator`), a density-matrix simulator with Kraus noise channels
(:mod:`.density`, :mod:`.noise`), Pauli/Ising operator tooling
(:mod:`.pauli`) and entangled-state helpers (:mod:`.bell`).

Bit convention: qubit 0 is the leftmost (most significant) position of a
basis label, so ``|q0 q1 ... q(n-1)>`` has integer index
``sum(q_j << (n-1-j))``.
"""

from repro.quantum.circuit import Operation, QuantumCircuit
from repro.quantum.density import DensityMatrix, DensitySimulator
from repro.quantum.gates import Gate, controlled, standard_gate
from repro.quantum.measurement import expectation_value, sample_counts
from repro.quantum.noise import NoiseModel, amplitude_damping, bit_flip, depolarizing, phase_damping, phase_flip
from repro.quantum.pauli import IsingHamiltonian, PauliString, PauliSum
from repro.quantum.simulator import StatevectorSimulator
from repro.quantum.state import Statevector
from repro.quantum.bell import bell_state, ghz_state, w_state

__all__ = [
    "Operation",
    "QuantumCircuit",
    "DensityMatrix",
    "DensitySimulator",
    "Gate",
    "controlled",
    "standard_gate",
    "expectation_value",
    "sample_counts",
    "NoiseModel",
    "amplitude_damping",
    "bit_flip",
    "depolarizing",
    "phase_damping",
    "phase_flip",
    "IsingHamiltonian",
    "PauliString",
    "PauliSum",
    "StatevectorSimulator",
    "Statevector",
    "bell_state",
    "ghz_state",
    "w_state",
]
