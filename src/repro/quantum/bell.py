"""Canonical entangled states: Bell pairs, GHZ, and W states.

These are the resource states of Sec. IV of the paper — the Bell state of
Example IV.1, the GHZ state of the GHZ game, and W states as a contrasting
entanglement class.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import SimulationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.state import Statevector

_BELL_KINDS = ("phi+", "phi-", "psi+", "psi-")


def bell_state(kind: str = "phi+") -> Statevector:
    """One of the four Bell states.

    ``phi+`` is the state of Example IV.1: ``(|00> + |11>)/sqrt(2)``.
    """
    if kind not in _BELL_KINDS:
        raise SimulationError(f"unknown Bell state {kind!r}; choose from {_BELL_KINDS}")
    amp = 1.0 / math.sqrt(2.0)
    data = np.zeros(4, dtype=complex)
    if kind == "phi+":
        data[0b00], data[0b11] = amp, amp
    elif kind == "phi-":
        data[0b00], data[0b11] = amp, -amp
    elif kind == "psi+":
        data[0b01], data[0b10] = amp, amp
    else:  # psi-
        data[0b01], data[0b10] = amp, -amp
    return Statevector(data, validate=False)


def bell_circuit() -> QuantumCircuit:
    """Circuit preparing ``|Phi+>`` from ``|00>`` (H then CNOT)."""
    qc = QuantumCircuit(2, name="bell")
    qc.h(0).cx(0, 1)
    return qc


def ghz_state(num_qubits: int = 3) -> Statevector:
    """The GHZ state ``(|0...0> + |1...1>)/sqrt(2)``."""
    if num_qubits < 2:
        raise SimulationError("GHZ needs at least 2 qubits")
    data = np.zeros(2**num_qubits, dtype=complex)
    amp = 1.0 / math.sqrt(2.0)
    data[0] = amp
    data[-1] = amp
    return Statevector(data, validate=False)


def ghz_circuit(num_qubits: int = 3) -> QuantumCircuit:
    """Circuit preparing the GHZ state (H + CNOT ladder)."""
    qc = QuantumCircuit(num_qubits, name="ghz")
    qc.h(0)
    for q in range(num_qubits - 1):
        qc.cx(q, q + 1)
    return qc


def w_state(num_qubits: int = 3) -> Statevector:
    """The W state: equal superposition of all weight-1 basis states."""
    if num_qubits < 2:
        raise SimulationError("W state needs at least 2 qubits")
    data = np.zeros(2**num_qubits, dtype=complex)
    amp = 1.0 / math.sqrt(num_qubits)
    for q in range(num_qubits):
        data[1 << (num_qubits - 1 - q)] = amp
    return Statevector(data, validate=False)
