"""Pure quantum states: the :class:`Statevector` class and its apply kernel.

The statevector is stored as a flat complex array of length ``2**n`` with the
bit convention from :mod:`repro.utils.bits` (qubit 0 = leftmost/most
significant).  Gate application uses tensor reshaping so a ``k``-qubit gate
costs ``O(2**n * 2**k)`` instead of building the full ``2**n`` operator.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.utils.bits import bits_to_index, bitstring_to_index, index_to_bitstring
from repro.utils.rngtools import ensure_rng

_ATOL = 1e-10


def apply_unitary(
    amplitudes: np.ndarray, num_qubits: int, matrix: np.ndarray, targets: Sequence[int]
) -> np.ndarray:
    """Apply a ``k``-qubit unitary ``matrix`` to ``targets`` of a state array.

    Args:
        amplitudes: Flat complex array of length ``2**num_qubits``.
        num_qubits: Total qubit count of the register.
        matrix: ``(2**k, 2**k)`` unitary.
        targets: ``k`` distinct qubit indices the unitary acts on, in the
            order matching the matrix's tensor factors.

    Returns:
        A new flat array with the gate applied.
    """
    k = len(targets)
    if len(set(targets)) != k:
        raise SimulationError(f"duplicate target qubits: {targets}")
    for q in targets:
        if q < 0 or q >= num_qubits:
            raise SimulationError(f"qubit {q} out of range for {num_qubits}-qubit register")
    if matrix.shape != (2**k, 2**k):
        raise SimulationError(
            f"matrix of shape {matrix.shape} does not act on {k} qubit(s)"
        )
    tensor = amplitudes.reshape((2,) * num_qubits)
    gate_tensor = matrix.reshape((2,) * (2 * k))
    moved = np.tensordot(gate_tensor, tensor, axes=(list(range(k, 2 * k)), list(targets)))
    result = np.moveaxis(moved, list(range(k)), list(targets))
    return np.ascontiguousarray(result).reshape(-1)


class Statevector:
    """An ``n``-qubit pure state.

    Instances are mutable: gate application methods update the state in place
    and return ``self`` for chaining.  Use :meth:`copy` to branch.
    """

    def __init__(self, amplitudes: Iterable[complex], validate: bool = True):
        data = np.asarray(list(amplitudes) if not isinstance(amplitudes, np.ndarray) else amplitudes, dtype=complex)
        data = data.reshape(-1)
        dim = data.shape[0]
        if dim == 0 or dim & (dim - 1):
            raise SimulationError(f"statevector length {dim} is not a power of 2")
        if validate:
            norm = np.linalg.norm(data)
            if norm < _ATOL:
                raise SimulationError("cannot normalise a zero statevector")
            if abs(norm - 1.0) > 1e-8:
                data = data / norm
        self._data = data

    # -- constructors -------------------------------------------------------

    @classmethod
    def zero_state(cls, num_qubits: int) -> "Statevector":
        """The all-zeros computational basis state ``|0...0>``."""
        if num_qubits < 1:
            raise SimulationError("need at least one qubit")
        data = np.zeros(2**num_qubits, dtype=complex)
        data[0] = 1.0
        return cls(data, validate=False)

    @classmethod
    def from_label(cls, label: str) -> "Statevector":
        """Basis state from a bitstring label, e.g. ``'010'``."""
        index = bitstring_to_index(label)
        data = np.zeros(2 ** len(label), dtype=complex)
        data[index] = 1.0
        return cls(data, validate=False)

    @classmethod
    def from_basis_index(cls, index: int, num_qubits: int) -> "Statevector":
        """Basis state ``|index>`` of an ``num_qubits``-qubit register."""
        data = np.zeros(2**num_qubits, dtype=complex)
        data[index] = 1.0
        return cls(data, validate=False)

    @classmethod
    def uniform_superposition(cls, num_qubits: int) -> "Statevector":
        """The state ``H^{(x)n}|0...0>`` with equal amplitudes."""
        dim = 2**num_qubits
        return cls(np.full(dim, 1.0 / math.sqrt(dim), dtype=complex), validate=False)

    @classmethod
    def uniform_over(cls, indices: Sequence[int], num_qubits: int) -> "Statevector":
        """Uniform superposition over the given basis indices.

        Used by :mod:`repro.qdb` to encode a set of records as a state.
        """
        if not indices:
            raise SimulationError("cannot build a superposition over an empty set")
        data = np.zeros(2**num_qubits, dtype=complex)
        amp = 1.0 / math.sqrt(len(indices))
        for idx in indices:
            if not 0 <= idx < 2**num_qubits:
                raise SimulationError(f"basis index {idx} out of range")
            if data[idx] != 0:
                raise SimulationError(f"duplicate basis index {idx}")
            data[idx] = amp
        return cls(data, validate=False)

    # -- basic properties ---------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Number of qubits in the register."""
        return int(self._data.shape[0]).bit_length() - 1

    @property
    def dim(self) -> int:
        """Hilbert-space dimension ``2**num_qubits``."""
        return int(self._data.shape[0])

    @property
    def data(self) -> np.ndarray:
        """The underlying amplitude array (a direct reference, not a copy)."""
        return self._data

    def copy(self) -> "Statevector":
        """An independent copy of this state."""
        return Statevector(self._data.copy(), validate=False)

    def amplitude(self, label: "str | int") -> complex:
        """Amplitude of a basis state given by bitstring label or index."""
        index = bitstring_to_index(label) if isinstance(label, str) else int(label)
        return complex(self._data[index])

    def probabilities(self) -> np.ndarray:
        """Probability of each basis state (length ``2**n`` float array)."""
        return np.abs(self._data) ** 2

    def probability(self, label: "str | int") -> float:
        """Probability of observing the given basis state."""
        return float(abs(self.amplitude(label)) ** 2)

    def norm(self) -> float:
        """Euclidean norm (1.0 for a valid state)."""
        return float(np.linalg.norm(self._data))

    def is_normalized(self, atol: float = 1e-8) -> bool:
        """Whether the state has unit norm up to ``atol``."""
        return abs(self.norm() - 1.0) <= atol

    # -- gate application ---------------------------------------------------

    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> "Statevector":
        """Apply a raw unitary matrix to the given qubits, in place."""
        self._data = apply_unitary(self._data, self.num_qubits, np.asarray(matrix, dtype=complex), list(qubits))
        return self

    def apply_gate(self, gate, qubits: Sequence[int]) -> "Statevector":
        """Apply a :class:`~repro.quantum.gates.Gate`, in place."""
        if gate.num_qubits != len(qubits):
            raise SimulationError(
                f"gate {gate.name!r} acts on {gate.num_qubits} qubit(s), got {len(qubits)} targets"
            )
        return self.apply_matrix(gate.matrix, qubits)

    def evolved(self, gate, qubits: Sequence[int]) -> "Statevector":
        """Return a new state with ``gate`` applied, leaving this one intact."""
        return self.copy().apply_gate(gate, qubits)

    def apply_diagonal(self, diagonal: np.ndarray) -> "Statevector":
        """Multiply amplitudes elementwise by a length-``2**n`` diagonal."""
        diagonal = np.asarray(diagonal, dtype=complex).reshape(-1)
        if diagonal.shape != self._data.shape:
            raise SimulationError("diagonal length does not match state dimension")
        self._data = self._data * diagonal
        return self

    # -- measurement --------------------------------------------------------

    def measure(
        self, qubits: "Sequence[int] | None" = None, rng=None
    ) -> tuple[tuple[int, ...], "Statevector"]:
        """Projectively measure ``qubits`` (default: all) in the Z basis.

        Returns:
            ``(outcome_bits, post_state)`` — the sampled classical outcome in
            qubit order, and the collapsed (renormalised) state.  ``self`` is
            not modified.
        """
        rng = ensure_rng(rng)
        n = self.num_qubits
        if qubits is None:
            qubits = list(range(n))
        qubits = list(qubits)
        marg = self.marginal_probabilities(qubits)
        flat_outcome = int(rng.choice(len(marg), p=marg))
        outcome_bits = tuple((flat_outcome >> (len(qubits) - 1 - i)) & 1 for i in range(len(qubits)))
        mask = np.ones(self.dim, dtype=bool)
        for bit, q in zip(outcome_bits, qubits):
            axis_bits = (np.arange(self.dim) >> (n - 1 - q)) & 1
            mask &= axis_bits == bit
        new_data = np.where(mask, self._data, 0.0)
        total = math.sqrt(float(np.sum(np.abs(new_data) ** 2)))
        if total < _ATOL:
            raise SimulationError("measurement collapsed onto a zero-probability branch")
        return outcome_bits, Statevector(new_data / total, validate=False)

    def marginal_probabilities(self, qubits: Sequence[int]) -> np.ndarray:
        """Outcome distribution of measuring only ``qubits`` (Z basis).

        The returned array has length ``2**len(qubits)``; entry ``i`` is the
        probability of the outcome whose bits (in the order of ``qubits``)
        spell the integer ``i``.
        """
        n = self.num_qubits
        qubits = list(qubits)
        for q in qubits:
            if not 0 <= q < n:
                raise SimulationError(f"qubit {q} out of range")
        probs = self.probabilities().reshape((2,) * n)
        keep = qubits
        drop = [ax for ax in range(n) if ax not in keep]
        if drop:
            probs = probs.sum(axis=tuple(drop))
        # axes of `probs` are now the kept qubits in increasing qubit order;
        # permute to the caller's requested order.
        order = np.argsort(np.argsort(keep))
        probs = np.transpose(probs, axes=list(order)) if len(keep) > 1 else probs
        return probs.reshape(-1)

    def sample_counts(self, shots: int, rng=None, qubits: "Sequence[int] | None" = None) -> dict[str, int]:
        """Sample measurement outcomes ``shots`` times without collapsing.

        Returns a ``{bitstring: count}`` dict over the measured qubits.
        """
        rng = ensure_rng(rng)
        if qubits is None:
            qubits = list(range(self.num_qubits))
        probs = self.marginal_probabilities(qubits)
        draws = rng.multinomial(shots, probs)
        width = len(list(qubits))
        return {
            index_to_bitstring(i, width): int(c) for i, c in enumerate(draws) if c > 0
        }

    # -- algebra ------------------------------------------------------------

    def inner(self, other: "Statevector") -> complex:
        """The inner product ``<self|other>``."""
        if other.dim != self.dim:
            raise SimulationError("dimension mismatch in inner product")
        return complex(np.vdot(self._data, other._data))

    def fidelity(self, other: "Statevector") -> float:
        """Pure-state fidelity ``|<self|other>|^2``."""
        return float(abs(self.inner(other)) ** 2)

    def tensor(self, other: "Statevector") -> "Statevector":
        """The product state ``|self> (x) |other>`` (self's qubits first)."""
        return Statevector(np.kron(self._data, other._data), validate=False)

    def expectation_diagonal(self, diagonal: np.ndarray) -> float:
        """Expectation of a real diagonal observable given as a vector."""
        diagonal = np.asarray(diagonal, dtype=float).reshape(-1)
        if diagonal.shape != self._data.shape:
            raise SimulationError("diagonal length does not match state dimension")
        return float(np.dot(self.probabilities(), diagonal))

    def expectation_matrix(self, matrix: np.ndarray) -> complex:
        """Expectation ``<psi|M|psi>`` of a full matrix observable."""
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.shape != (self.dim, self.dim):
            raise SimulationError("observable dimension mismatch")
        return complex(np.vdot(self._data, matrix @ self._data))

    def density_matrix(self) -> np.ndarray:
        """The rank-1 density matrix ``|psi><psi|``."""
        return np.outer(self._data, self._data.conj())

    def partial_trace(self, keep: Sequence[int]) -> np.ndarray:
        """Reduced density matrix over ``keep`` (all other qubits traced out)."""
        n = self.num_qubits
        keep = list(keep)
        drop = [q for q in range(n) if q not in keep]
        tensor = self._data.reshape((2,) * n)
        perm = keep + drop
        tensor = np.transpose(tensor, perm)
        dim_keep = 2 ** len(keep)
        dim_drop = 2 ** len(drop)
        mat = tensor.reshape(dim_keep, dim_drop)
        return mat @ mat.conj().T

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Statevector):
            return NotImplemented
        return self.dim == other.dim and bool(np.allclose(self._data, other._data))

    def equiv(self, other: "Statevector", atol: float = 1e-9) -> bool:
        """Equality up to a global phase."""
        if other.dim != self.dim:
            return False
        return abs(abs(self.inner(other)) - 1.0) <= atol

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        terms = []
        for i, amp in enumerate(self._data):
            if abs(amp) > 1e-9:
                terms.append(f"({amp:.3g})|{index_to_bitstring(i, self.num_qubits)}>")
            if len(terms) >= 6:
                terms.append("...")
                break
        return f"Statevector({' + '.join(terms)})"
