"""Grover-based transaction scheduling (Groppe & Groppe [31]).

Schedules are encoded as bitstrings: each transaction gets
``ceil(log2 num_slots)`` bits naming its slot.  An oracle marks the
bitstrings decoding to *conflict-free* schedules; BBHT Grover search finds
one, and Durr-Hoyer threshold descent finds a minimum-makespan one.  Oracle
calls are counted so benches can compare against the classical enumeration
cost (the paper's "code generation for Grover's search" pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.algorithms.grover import CountingOracle, GroverSearch
from repro.db.transactions import Transaction
from repro.exceptions import InfeasibleError, ReproError
from repro.txn.qubo import assignment_conflicts, assignment_makespan
from repro.utils.rngtools import ensure_rng


def _bits_per_txn(num_slots: int) -> int:
    return max(1, (num_slots - 1).bit_length())


def encode_assignment(assignment: dict[str, int], txn_ids: list[str], num_slots: int) -> int:
    """Pack a schedule into the Grover search index."""
    width = _bits_per_txn(num_slots)
    index = 0
    for txn_id in txn_ids:
        index = (index << width) | assignment[txn_id]
    return index


def decode_index(index: int, txn_ids: list[str], num_slots: int) -> dict[str, int]:
    """Unpack a search index into ``{txn_id: slot}``."""
    width = _bits_per_txn(num_slots)
    assignment: dict[str, int] = {}
    for txn_id in reversed(txn_ids):
        assignment[txn_id] = index & ((1 << width) - 1)
        index >>= width
    return assignment


@dataclass
class GroverScheduleResult:
    """Outcome of a Grover schedule search."""

    assignment: "dict[str, int] | None"
    found: bool
    oracle_calls: int
    makespan: "int | None" = None
    info: dict = field(default_factory=dict)


def _schedule_qubits(transactions: Sequence[Transaction], num_slots: int) -> tuple[list[str], int]:
    txn_ids = [t.txn_id for t in transactions]
    width = _bits_per_txn(num_slots)
    num_qubits = width * len(txn_ids)
    if num_qubits > 16:
        raise ReproError(
            f"schedule encoding needs {num_qubits} qubits; limit is 16 for simulation"
        )
    return txn_ids, num_qubits


def _valid_indices(
    transactions: Sequence[Transaction], txn_ids: list[str], num_qubits: int, num_slots: int
) -> list[int]:
    valid = []
    for index in range(2**num_qubits):
        assignment = decode_index(index, txn_ids, num_slots)
        if any(s >= num_slots for s in assignment.values()):
            continue
        if assignment_conflicts(transactions, assignment) == 0:
            valid.append(index)
    return valid


def grover_find_schedule(
    transactions: Sequence[Transaction],
    num_slots: int,
    rng=None,
) -> GroverScheduleResult:
    """Find any conflict-free schedule via BBHT Grover search."""
    rng = ensure_rng(rng)
    txn_ids, num_qubits = _schedule_qubits(transactions, num_slots)
    valid = _valid_indices(transactions, txn_ids, num_qubits, num_slots)
    oracle = CountingOracle(valid, num_qubits)
    if not valid:
        return GroverScheduleResult(None, False, 0, info={"reason": "no conflict-free schedule"})
    result = GroverSearch(oracle).search_unknown_count(rng=rng)
    if not result.found:
        return GroverScheduleResult(None, False, oracle.calls)
    assignment = decode_index(result.found_index, txn_ids, num_slots)
    return GroverScheduleResult(
        assignment,
        True,
        oracle.calls,
        makespan=assignment_makespan(transactions, assignment),
        info={"search_space": 2**num_qubits, "num_valid": len(valid)},
    )


def grover_minimum_makespan(
    transactions: Sequence[Transaction],
    num_slots: int,
    rng=None,
    max_rounds: int = 16,
) -> GroverScheduleResult:
    """Durr-Hoyer threshold descent to a minimum-makespan valid schedule."""
    rng = ensure_rng(rng)
    txn_ids, num_qubits = _schedule_qubits(transactions, num_slots)
    valid = set(_valid_indices(transactions, txn_ids, num_qubits, num_slots))
    if not valid:
        return GroverScheduleResult(None, False, 0, info={"reason": "no conflict-free schedule"})

    def makespan_of(index: int) -> float:
        if index not in valid:
            return float("inf")
        return float(assignment_makespan(transactions, decode_index(index, txn_ids, num_slots)))

    total_calls = 0
    # Start from any valid schedule found by plain Grover search.
    first = grover_find_schedule(transactions, num_slots, rng=rng)
    total_calls += first.oracle_calls
    if not first.found:
        return GroverScheduleResult(None, False, total_calls)
    best_index = encode_assignment(first.assignment, txn_ids, num_slots)
    best_value = makespan_of(best_index)
    for _ in range(max_rounds):
        better = [i for i in valid if makespan_of(i) < best_value]
        if not better:
            break
        oracle = CountingOracle(better, num_qubits)
        result = GroverSearch(oracle).search_unknown_count(rng=rng)
        total_calls += oracle.calls
        if not result.found:
            break
        best_index = result.found_index
        best_value = makespan_of(best_index)
    assignment = decode_index(best_index, txn_ids, num_slots)
    return GroverScheduleResult(
        assignment,
        True,
        total_calls,
        makespan=int(best_value),
        info={"search_space": 2**num_qubits, "num_valid": len(valid)},
    )
