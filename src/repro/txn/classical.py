"""Classical transaction-scheduling baselines."""

from __future__ import annotations

import itertools
from typing import Sequence

import networkx as nx

from repro.db.transactions import Transaction
from repro.exceptions import ReproError
from repro.txn.qubo import assignment_conflicts, assignment_makespan


def conflict_graph_of(transactions: Sequence[Transaction]) -> nx.Graph:
    """Undirected conflict graph (nodes = transactions)."""
    g = nx.Graph()
    txns = list(transactions)
    g.add_nodes_from(t.txn_id for t in txns)
    for i, a in enumerate(txns):
        for b in txns[i + 1 :]:
            if a.conflicts_with(b):
                g.add_edge(a.txn_id, b.txn_id)
    return g


def greedy_coloring_schedule(transactions: Sequence[Transaction]) -> dict[str, int]:
    """First-fit colouring of the conflict graph: slots = colours.

    Conflict-free by construction; the number of slots used is at most
    ``max_degree + 1``.
    """
    g = conflict_graph_of(transactions)
    coloring = nx.coloring.greedy_color(g, strategy="largest_first")
    return {t.txn_id: coloring[t.txn_id] for t in transactions}


def exhaustive_schedule(
    transactions: Sequence[Transaction],
    num_slots: int,
    max_space: int = 2_000_000,
) -> tuple["dict[str, int] | None", "int | None", int]:
    """Enumerate all assignments; returns (best, makespan, states_checked).

    Exact minimum-makespan conflict-free schedule, or ``(None, None, n)``
    when no conflict-free schedule exists within ``num_slots`` slots.
    """
    txns = list(transactions)
    space = num_slots ** len(txns)
    if space > max_space:
        raise ReproError(f"search space {space} exceeds limit {max_space}")
    best = None
    best_makespan = None
    checked = 0
    for combo in itertools.product(range(num_slots), repeat=len(txns)):
        checked += 1
        assignment = {t.txn_id: s for t, s in zip(txns, combo)}
        if assignment_conflicts(txns, assignment) != 0:
            continue
        makespan = assignment_makespan(txns, assignment)
        if best_makespan is None or makespan < best_makespan:
            best = assignment
            best_makespan = makespan
    return best, best_makespan, checked
