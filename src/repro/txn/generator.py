"""Synthetic transaction workload generator."""

from __future__ import annotations

from repro.db.transactions import Transaction
from repro.exceptions import ReproError
from repro.utils.rngtools import ensure_rng


def generate_transactions(
    num_transactions: int,
    num_items: int = 6,
    ops_per_transaction: tuple[int, int] = (2, 4),
    write_probability: float = 0.5,
    rng=None,
) -> list[Transaction]:
    """Random read/write transactions over a shared item pool.

    Conflict density is controlled by ``num_items``: fewer items => more
    transactions touch the same data => denser conflict graph.
    """
    if num_transactions < 1 or num_items < 1:
        raise ReproError("need at least one transaction and one item")
    rng = ensure_rng(rng)
    lo, hi = ops_per_transaction
    transactions = []
    for t in range(num_transactions):
        count = int(rng.integers(lo, hi + 1))
        items = rng.choice(num_items, size=min(count, num_items), replace=False)
        ops = []
        for item in items:
            kind = "w" if rng.random() < write_probability else "r"
            ops.append(f"{kind}(x{item})")
        transactions.append(Transaction.from_string(f"T{t}", " ".join(ops)))
    return transactions
