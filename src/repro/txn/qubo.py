"""The Bittner-Groppe transaction-scheduling QUBO [29], [30].

Binary variable ``x[t, s]`` assigns transaction ``t`` to execution slot
``s``.  The energy combines:

* an exactly-one constraint per transaction,
* a conflict penalty for every conflicting pair sharing a slot (blocking
  under 2PL), and
* a makespan proxy rewarding early slots (``s * duration`` per assignment),

so the ground state is a conflict-free schedule of minimum makespan.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.db.transactions import Transaction
from repro.exceptions import InfeasibleError, ReproError
from repro.qubo.model import QuboModel
from repro.qubo.penalty import add_exactly_one_groups


def schedule_to_qubo(
    transactions: Sequence[Transaction],
    num_slots: int,
    conflict_weight: "float | None" = None,
    assignment_weight: "float | None" = None,
    makespan_coefficient: float = 1.0,
) -> QuboModel:
    """Build the slot-assignment QUBO; labels are ``(txn_id, slot)``."""
    if num_slots < 1:
        raise ReproError("need at least one slot")
    txns = list(transactions)
    max_duration = max(t.duration() for t in txns)
    objective_swing = makespan_coefficient * max_duration * num_slots * len(txns)
    conflict_w = conflict_weight if conflict_weight is not None else objective_swing + 1.0
    assign_w = assignment_weight if assignment_weight is not None else 2.0 * conflict_w

    model = QuboModel()
    # Variables are created t-major (index = t_pos * num_slots + s), so the
    # bulk coefficient chunks below address them with pure index arithmetic.
    model.variables_from((t.txn_id, s) for t in txns for s in range(num_slots))
    slots = np.arange(num_slots, dtype=np.float64)
    durations = np.repeat([t.duration() for t in txns], num_slots)
    model.add_linear_from(
        np.arange(len(txns) * num_slots),
        (makespan_coefficient * np.tile(slots, len(txns))) * durations,
    )
    conflict_pairs = [
        (i, k)
        for i, a in enumerate(txns)
        for k, b in enumerate(txns[i + 1 :], start=i + 1)
        if a.conflicts_with(b)
    ]
    if conflict_pairs:
        base = np.array(conflict_pairs, dtype=np.int64) * num_slots
        s = np.arange(num_slots, dtype=np.int64)
        model.add_quadratic_from(
            (base[:, 0:1] + s).ravel(), (base[:, 1:2] + s).ravel(), conflict_w
        )
    add_exactly_one_groups(
        model, np.arange(len(txns) * num_slots).reshape(len(txns), num_slots), assign_w
    )
    return model


def decode_assignment(
    transactions: Sequence[Transaction],
    model: QuboModel,
    bits,
    num_slots: int,
    repair: bool = True,
) -> dict[str, int]:
    """Assignment bits -> ``{txn_id: slot}`` with greedy conflict-aware repair."""
    assignment_raw = model.decode(bits)
    result: dict[str, int] = {}
    unplaced: list[Transaction] = []
    for t in transactions:
        slots = [s for s in range(num_slots) if assignment_raw.get((t.txn_id, s), 0) == 1]
        if len(slots) == 1:
            result[t.txn_id] = slots[0]
        elif not repair:
            raise InfeasibleError(f"transaction {t.txn_id} assigned to {len(slots)} slots")
        elif slots:
            result[t.txn_id] = min(slots)
        else:
            unplaced.append(t)
    for t in unplaced:
        by_id = {x.txn_id: x for x in transactions}
        for s in range(num_slots):
            clash = any(
                result.get(other.txn_id) == s and t.conflicts_with(other)
                for other in transactions
                if other.txn_id in result
            )
            if not clash:
                result[t.txn_id] = s
                break
        else:
            result[t.txn_id] = 0  # no safe slot: accept blocking
        del by_id
    return result


def assignment_conflicts(transactions: Sequence[Transaction], assignment: dict[str, int]) -> int:
    """Number of conflicting pairs sharing a slot (0 = conflict-free)."""
    txns = list(transactions)
    count = 0
    for i, a in enumerate(txns):
        for b in txns[i + 1 :]:
            if assignment[a.txn_id] == assignment[b.txn_id] and a.conflicts_with(b):
                count += 1
    return count


def assignment_makespan(transactions: Sequence[Transaction], assignment: dict[str, int]) -> int:
    """Idealised makespan: slots are as long as their longest transaction."""
    slots: dict[int, int] = {}
    for t in transactions:
        s = assignment[t.txn_id]
        slots[s] = max(slots.get(s, 0), t.duration())
    return sum(slots.values())
