"""Transaction management on quantum computers (Table I rows [29]-[31]).

* :mod:`.qubo` — the Bittner & Groppe slot-assignment QUBO: avoid 2PL
  blocking by never co-scheduling conflicting transactions [29], [30];
* :mod:`.grover_scheduler` — the Groppe & Groppe approach: generate a
  Grover oracle over encoded schedules and search for (minimum-makespan)
  conflict-free schedules [31];
* :mod:`.classical` — greedy graph-coloring and exhaustive baselines.
"""

from repro.txn.classical import exhaustive_schedule, greedy_coloring_schedule
from repro.txn.generator import generate_transactions
from repro.txn.grover_scheduler import GroverScheduleResult, grover_find_schedule, grover_minimum_makespan
from repro.txn.qubo import decode_assignment, schedule_to_qubo

__all__ = [
    "exhaustive_schedule",
    "greedy_coloring_schedule",
    "generate_transactions",
    "GroverScheduleResult",
    "grover_find_schedule",
    "grover_minimum_makespan",
    "decode_assignment",
    "schedule_to_qubo",
]
