"""Grover's algorithm with query-complexity instrumentation.

This is the Sec. III-A core of the paper: searching an unsorted database of
``N = 2^n`` records in ``O(sqrt(N))`` oracle queries [19].  The oracle is a
phase flip over marked basis states and *counts its own invocations*, so
benchmarks can compare quantum and classical query complexity directly.

Also included: the Boyer-Brassard-Hoyer-Tapp (BBHT) loop for an unknown
number of marked items, and Durr-Hoyer minimum finding (used by the
Groppe-Groppe transaction scheduler and the Fig. 2 roadmap bench).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.quantum.state import Statevector
from repro.utils.bits import index_to_bitstring
from repro.utils.rngtools import ensure_rng


class CountingOracle:
    """Phase oracle ``O|x> = (-1)^{f(x)} |x>`` that counts its queries."""

    def __init__(self, marked: Iterable[int], num_qubits: int):
        self.num_qubits = num_qubits
        dim = 2**num_qubits
        self.marked = frozenset(int(m) for m in marked)
        for m in self.marked:
            if not 0 <= m < dim:
                raise SimulationError(f"marked index {m} out of range for {num_qubits} qubits")
        diagonal = np.ones(dim)
        for m in self.marked:
            diagonal[m] = -1.0
        self._diagonal = diagonal
        self.calls = 0

    @classmethod
    def from_predicate(cls, predicate: Callable[[int], bool], num_qubits: int) -> "CountingOracle":
        """Build the oracle by evaluating ``predicate`` on every index."""
        marked = [i for i in range(2**num_qubits) if predicate(i)]
        return cls(marked, num_qubits)

    @property
    def num_marked(self) -> int:
        return len(self.marked)

    def apply(self, state: Statevector) -> Statevector:
        """Apply the phase flip (one query)."""
        self.calls += 1
        return state.apply_diagonal(self._diagonal)

    def classify(self, index: int) -> bool:
        """Classical membership query (also counted)."""
        self.calls += 1
        return index in self.marked

    def reset(self) -> None:
        self.calls = 0


def diffusion(state: Statevector) -> Statevector:
    """Inversion about the mean: ``2|s><s| - I`` for uniform ``|s>``."""
    data = state.data
    mean = data.mean()
    state._data = 2.0 * mean - data  # noqa: SLF001 - performance-critical kernel
    return state


def optimal_iterations(num_states: int, num_marked: int) -> int:
    """``floor(pi/4 * sqrt(N/M))`` — the Grover sweet spot."""
    if num_marked <= 0:
        raise SimulationError("need at least one marked state")
    if num_marked >= num_states:
        return 0
    angle = math.asin(math.sqrt(num_marked / num_states))
    return max(0, int(math.floor(math.pi / (4.0 * angle))))


@dataclass
class GroverResult:
    """Outcome of a Grover run."""

    found_index: int
    found: bool
    iterations: int
    oracle_calls: int
    success_probability: float
    num_qubits: int

    @property
    def found_bitstring(self) -> str:
        return index_to_bitstring(self.found_index, self.num_qubits)


class GroverSearch:
    """Amplitude-amplified search over ``2^n`` basis states."""

    def __init__(self, oracle: CountingOracle):
        self.oracle = oracle
        self.num_qubits = oracle.num_qubits

    def amplified_state(self, iterations: int) -> Statevector:
        """The state after ``iterations`` Grover rounds (no measurement)."""
        state = Statevector.uniform_superposition(self.num_qubits)
        for _ in range(iterations):
            self.oracle.apply(state)
            diffusion(state)
        return state

    def success_probability(self, iterations: int) -> float:
        """Probability that measuring after ``iterations`` hits a marked state."""
        state = self.amplified_state(iterations)
        probs = state.probabilities()
        return float(sum(probs[m] for m in self.oracle.marked))

    def run(self, iterations: "int | None" = None, rng=None) -> GroverResult:
        """Run with the optimal (or given) iteration count and measure once."""
        rng = ensure_rng(rng)
        if iterations is None:
            iterations = optimal_iterations(2**self.num_qubits, max(self.oracle.num_marked, 1))
        state = self.amplified_state(iterations)
        probs = state.probabilities()
        outcome = int(rng.choice(len(probs), p=probs / probs.sum()))
        success = float(sum(probs[m] for m in self.oracle.marked))
        return GroverResult(
            found_index=outcome,
            found=outcome in self.oracle.marked,
            iterations=iterations,
            oracle_calls=self.oracle.calls,
            success_probability=success,
            num_qubits=self.num_qubits,
        )

    def search_unknown_count(self, rng=None, max_rounds: int = 64) -> GroverResult:
        """BBHT search when the number of marked items is unknown.

        Grows the iteration cap geometrically (factor 6/5) and verifies each
        measured candidate with one classical query, as in [40].
        """
        rng = ensure_rng(rng)
        n = self.num_qubits
        sqrt_n = math.sqrt(2**n)
        m_cap = 1.0
        total_iterations = 0
        for _ in range(max_rounds):
            j = int(rng.integers(0, max(int(m_cap), 1))) if m_cap > 1 else 0
            state = Statevector.uniform_superposition(n)
            for _ in range(j):
                self.oracle.apply(state)
                diffusion(state)
            total_iterations += j
            probs = state.probabilities()
            outcome = int(rng.choice(len(probs), p=probs / probs.sum()))
            if self.oracle.classify(outcome):
                return GroverResult(
                    found_index=outcome,
                    found=True,
                    iterations=total_iterations,
                    oracle_calls=self.oracle.calls,
                    success_probability=float(sum(probs[m] for m in self.oracle.marked)),
                    num_qubits=n,
                )
            m_cap = min(1.2 * max(m_cap, 1.0), sqrt_n)
        return GroverResult(
            found_index=-1,
            found=False,
            iterations=total_iterations,
            oracle_calls=self.oracle.calls,
            success_probability=0.0,
            num_qubits=n,
        )


def classical_search(oracle: CountingOracle, rng=None) -> tuple[int, int]:
    """Classical random-order scan; returns ``(found_index, queries_used)``.

    Queries are counted on the same oracle object, so after a run
    ``oracle.calls`` is directly comparable with the quantum counterpart.
    """
    rng = ensure_rng(rng)
    order = rng.permutation(2**oracle.num_qubits)
    for idx in order:
        if oracle.classify(int(idx)):
            return int(idx), oracle.calls
    return -1, oracle.calls


def durr_hoyer_minimum(
    values: Sequence[float],
    rng=None,
    max_rounds: int = 32,
) -> tuple[int, int]:
    """Durr-Hoyer quantum minimum finding over a table of values.

    Returns ``(argmin_index, total_oracle_calls)``.  Each round builds a
    threshold oracle ``f(x) = [values[x] < values[y]]`` and runs a BBHT
    search for an improving index; expected total cost is ``O(sqrt(N))``.
    """
    rng = ensure_rng(rng)
    values = np.asarray(values, dtype=float)
    n_items = values.size
    if n_items == 0:
        raise SimulationError("cannot take the minimum of an empty table")
    num_qubits = max(1, (n_items - 1).bit_length())
    # Pad out-of-range indices with +inf so they are never marked.
    padded = np.full(2**num_qubits, np.inf)
    padded[:n_items] = values
    best = int(rng.integers(0, n_items))
    total_calls = 0
    for _ in range(max_rounds):
        marked = [int(i) for i in np.nonzero(padded < padded[best])[0]]
        if not marked:
            break
        oracle = CountingOracle(marked, num_qubits)
        result = GroverSearch(oracle).search_unknown_count(rng=rng)
        total_calls += oracle.calls
        if result.found:
            best = result.found_index
    return best, total_calls


def classical_minimum(values: Sequence[float]) -> tuple[int, int]:
    """Classical scan minimum; returns ``(argmin, comparisons)``."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise SimulationError("cannot take the minimum of an empty table")
    best = 0
    comparisons = 0
    for i in range(1, values.size):
        comparisons += 1
        if values[i] < values[best]:
            best = i
    return best, comparisons
