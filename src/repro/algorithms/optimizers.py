"""Classical optimizers for hybrid quantum-classical loops (QAOA/VQE/VQC).

Three options cover the NISQ-era standards:

* :func:`scipy_minimize` — COBYLA / Nelder-Mead via scipy (noise-free
  simulator expectations).
* :class:`SPSAOptimizer` — simultaneous perturbation, the common choice on
  sampled/noisy objectives.
* :func:`parameter_shift_gradient` — exact gradients for circuits built
  from single-parameter rotations, enabling plain gradient descent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np
from scipy import optimize as sciopt

from repro.utils.rngtools import ensure_rng

ScalarFn = Callable[[np.ndarray], float]


@dataclass
class OptimizerResult:
    """Outcome of a classical optimization run."""

    params: np.ndarray
    value: float
    evaluations: int
    history: list[float] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OptimizerResult(value={self.value:.6g}, evals={self.evaluations})"


def scipy_minimize(
    fn: ScalarFn,
    x0: np.ndarray,
    method: str = "COBYLA",
    maxiter: int = 200,
) -> OptimizerResult:
    """Minimise ``fn`` with a scipy derivative-free method."""
    history: list[float] = []
    evals = 0

    def wrapped(x: np.ndarray) -> float:
        nonlocal evals
        evals += 1
        value = float(fn(np.asarray(x, dtype=float)))
        history.append(value)
        return value

    result = sciopt.minimize(wrapped, np.asarray(x0, dtype=float), method=method, options={"maxiter": maxiter})
    return OptimizerResult(np.asarray(result.x, dtype=float), float(result.fun), evals, history)


class SPSAOptimizer:
    """Simultaneous Perturbation Stochastic Approximation.

    Uses the standard gain sequences ``a_k = a / (k + 1 + A)^alpha`` and
    ``c_k = c / (k + 1)^gamma`` (Spall 1998).
    """

    def __init__(
        self,
        maxiter: int = 200,
        a: float = 0.2,
        c: float = 0.1,
        alpha: float = 0.602,
        gamma: float = 0.101,
        stability: "float | None" = None,
    ):
        self.maxiter = maxiter
        self.a = a
        self.c = c
        self.alpha = alpha
        self.gamma = gamma
        self.stability = stability if stability is not None else 0.1 * maxiter

    def minimize(self, fn: ScalarFn, x0: np.ndarray, rng=None) -> OptimizerResult:
        rng = ensure_rng(rng)
        x = np.asarray(x0, dtype=float).copy()
        best_x, best_v = x.copy(), float(fn(x))
        history = [best_v]
        evals = 1
        for k in range(self.maxiter):
            ak = self.a / (k + 1 + self.stability) ** self.alpha
            ck = self.c / (k + 1) ** self.gamma
            delta = rng.choice([-1.0, 1.0], size=x.shape)
            plus = float(fn(x + ck * delta))
            minus = float(fn(x - ck * delta))
            evals += 2
            grad = (plus - minus) / (2.0 * ck) * delta
            x = x - ak * grad
            value = min(plus, minus)
            history.append(value)
            if value < best_v:
                best_v = value
                best_x = (x + ck * delta).copy() if plus < minus else (x - ck * delta).copy()
        final = float(fn(x))
        evals += 1
        history.append(final)
        if final < best_v:
            best_v, best_x = final, x.copy()
        return OptimizerResult(best_x, best_v, evals, history)


def parameter_shift_gradient(fn: ScalarFn, params: np.ndarray, shift: float = np.pi / 2) -> np.ndarray:
    """Exact gradient of rotation-parameterised circuit expectations.

    Valid when every parameter enters the circuit as the angle of a gate
    ``exp(-i theta G / 2)`` with ``G^2 = I`` (RX/RY/RZ/RZZ): then
    ``df/dtheta = (f(theta + pi/2) - f(theta - pi/2)) / 2``.
    """
    params = np.asarray(params, dtype=float)
    grad = np.zeros_like(params)
    for i in range(params.size):
        plus = params.copy()
        plus[i] += shift
        minus = params.copy()
        minus[i] -= shift
        grad[i] = (float(fn(plus)) - float(fn(minus))) / (2.0 * np.sin(shift))
    return grad


def finite_difference_gradient(fn: ScalarFn, params: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences (for observables where the shift rule
    does not apply)."""
    params = np.asarray(params, dtype=float)
    grad = np.zeros_like(params)
    for i in range(params.size):
        plus = params.copy()
        plus[i] += eps
        minus = params.copy()
        minus[i] -= eps
        grad[i] = (float(fn(plus)) - float(fn(minus))) / (2.0 * eps)
    return grad


def gradient_descent(
    fn: ScalarFn,
    x0: np.ndarray,
    learning_rate: float = 0.1,
    maxiter: int = 100,
    grad_fn: "Callable[[ScalarFn, np.ndarray], np.ndarray] | None" = None,
    tol: float = 1e-8,
) -> OptimizerResult:
    """Plain gradient descent using the parameter-shift rule by default."""
    grad_fn = grad_fn or parameter_shift_gradient
    x = np.asarray(x0, dtype=float).copy()
    history = []
    evals = 0
    value = float(fn(x))
    evals += 1
    history.append(value)
    for _ in range(maxiter):
        grad = grad_fn(fn, x)
        evals += 2 * x.size
        x_new = x - learning_rate * grad
        new_value = float(fn(x_new))
        evals += 1
        history.append(new_value)
        if abs(new_value - value) < tol:
            x, value = x_new, new_value
            break
        x, value = x_new, new_value
    return OptimizerResult(x, value, evals, history)
