"""Quantum Fourier transform circuits."""

from __future__ import annotations

import math

from repro.quantum.circuit import QuantumCircuit


def qft_circuit(num_qubits: int, do_swaps: bool = True) -> QuantumCircuit:
    """The QFT on ``num_qubits`` qubits.

    Qubit 0 is the most significant bit of the input integer (library-wide
    convention), matching the textbook circuit: Hadamard the top wire, then
    controlled phases ``pi/2, pi/4, ...`` from the wires below.
    """
    qc = QuantumCircuit(num_qubits, name="qft")
    for target in range(num_qubits):
        qc.h(target)
        for offset, control in enumerate(range(target + 1, num_qubits), start=1):
            qc.cp(math.pi / (2**offset), control, target)
    if do_swaps:
        for q in range(num_qubits // 2):
            qc.swap(q, num_qubits - 1 - q)
    return qc


def inverse_qft_circuit(num_qubits: int, do_swaps: bool = True) -> QuantumCircuit:
    """The inverse QFT (adjoint of :func:`qft_circuit`)."""
    inv = qft_circuit(num_qubits, do_swaps=do_swaps).inverse()
    inv.name = "iqft"
    return inv
