"""Quantum phase estimation.

QPE is one of the algorithm families Fig. 2 lists as candidates for data
management problems.  Given a unitary ``U`` and (a state overlapping) an
eigenstate ``U|u> = e^{2 pi i phi}|u>``, QPE with ``t`` ancilla qubits
returns a ``t``-bit binary expansion of ``phi``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.qft import qft_circuit
from repro.exceptions import SimulationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.gates import Gate, controlled
from repro.quantum.simulator import StatevectorSimulator
from repro.quantum.state import Statevector
from repro.utils.rngtools import ensure_rng


@dataclass
class QPEResult:
    """Outcome of a phase-estimation run."""

    phase: float
    counts: dict[str, int]
    num_ancillas: int

    @property
    def resolution(self) -> float:
        """Smallest representable phase increment ``2^-t``."""
        return 2.0**-self.num_ancillas


def qpe_circuit(unitary: np.ndarray, num_ancillas: int) -> QuantumCircuit:
    """Build the QPE circuit (ancillas are qubits ``0..t-1``).

    The system register follows the ancillas; prepare its initial state via
    the simulator's ``initial_state``.
    """
    unitary = np.asarray(unitary, dtype=complex)
    dim = unitary.shape[0]
    if unitary.ndim != 2 or dim != unitary.shape[1] or dim & (dim - 1):
        raise SimulationError("unitary must be square with power-of-2 dimension")
    num_system = dim.bit_length() - 1
    t = num_ancillas
    qc = QuantumCircuit(t + num_system, name="qpe")
    for a in range(t):
        qc.h(a)
    # Ancilla a controls U^(2^(t-1-a)) so ancilla 0 is the most significant
    # phase bit, matching the library's bit convention.
    power = unitary
    for a in range(t - 1, -1, -1):
        gate = controlled(Gate("u_pow", power))
        qc.append(gate, (a, *range(t, t + num_system)))
        power = power @ power
    iqft = qft_circuit(t).inverse()
    qc.compose(iqft, qubits=list(range(t)))
    return qc


def estimate_phase(
    unitary: np.ndarray,
    eigenstate: Statevector,
    num_ancillas: int = 6,
    shots: int = 512,
    rng=None,
) -> QPEResult:
    """Run QPE and return the most frequent phase estimate in ``[0, 1)``."""
    rng = ensure_rng(rng)
    qc = qpe_circuit(unitary, num_ancillas)
    initial = Statevector.zero_state(num_ancillas).tensor(eigenstate)
    sim = StatevectorSimulator()
    final = sim.run(qc, initial_state=initial)
    counts = final.sample_counts(shots, rng=rng, qubits=list(range(num_ancillas)))
    best = max(counts, key=counts.get)
    phase = int(best, 2) / 2**num_ancillas
    return QPEResult(phase=phase, counts=counts, num_ancillas=num_ancillas)
