"""Gate-model quantum algorithms (the "intermediate quantum algorithms" of
Table I and Fig. 2): Grover search, QAOA, VQE, QFT/QPE, and variational
quantum circuits, plus the classical optimizers that drive the hybrid loops.
"""

from repro.algorithms.grover import (
    CountingOracle,
    GroverResult,
    GroverSearch,
    classical_search,
    durr_hoyer_minimum,
    optimal_iterations,
)
from repro.algorithms.optimizers import (
    OptimizerResult,
    SPSAOptimizer,
    finite_difference_gradient,
    parameter_shift_gradient,
    scipy_minimize,
)
from repro.algorithms.qaoa import QAOA, QAOAResult
from repro.algorithms.qft import qft_circuit
from repro.algorithms.qpe import QPEResult, estimate_phase
from repro.algorithms.vqc import VariationalCircuit
from repro.algorithms.vqe import VQE, VQEResult, hardware_efficient_ansatz

__all__ = [
    "CountingOracle",
    "GroverResult",
    "GroverSearch",
    "classical_search",
    "durr_hoyer_minimum",
    "optimal_iterations",
    "OptimizerResult",
    "SPSAOptimizer",
    "finite_difference_gradient",
    "parameter_shift_gradient",
    "scipy_minimize",
    "QAOA",
    "QAOAResult",
    "qft_circuit",
    "QPEResult",
    "estimate_phase",
    "VariationalCircuit",
    "VQE",
    "VQEResult",
    "hardware_efficient_ansatz",
]
