"""Variational quantum eigensolver.

VQE appears in Table I via Nayak et al. [26] (bushy join trees) and in the
Fig. 2 roadmap.  For the diagonal Ising Hamiltonians of QUBO problems a
real-amplitude RY ansatz with a CZ entangling ring suffices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.optimizers import OptimizerResult, SPSAOptimizer, scipy_minimize
from repro.exceptions import ReproError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.pauli import IsingHamiltonian, PauliSum
from repro.quantum.simulator import StatevectorSimulator
from repro.qubo.model import QuboModel
from repro.qubo.sampleset import Sample, SampleSet
from repro.utils.bits import index_to_bits
from repro.utils.rngtools import ensure_rng


def hardware_efficient_ansatz(num_qubits: int, num_layers: int, params: np.ndarray) -> QuantumCircuit:
    """Real-amplitudes ansatz: RY layers with CZ entangling rings.

    Needs ``num_qubits * (num_layers + 1)`` parameters.
    """
    params = np.asarray(params, dtype=float)
    expected = num_qubits * (num_layers + 1)
    if params.size != expected:
        raise ReproError(f"ansatz expects {expected} parameters, got {params.size}")
    qc = QuantumCircuit(num_qubits, name=f"he_ansatz_l{num_layers}")
    k = 0
    for _ in range(num_layers):
        for q in range(num_qubits):
            qc.ry(params[k], q)
            k += 1
        for q in range(num_qubits - 1):
            qc.cz(q, q + 1)
        if num_qubits > 2:
            qc.cz(num_qubits - 1, 0)
    for q in range(num_qubits):
        qc.ry(params[k], q)
        k += 1
    return qc


@dataclass
class VQEResult:
    """Optimised ansatz parameters plus sampled solutions."""

    params: np.ndarray
    energy: float
    samples: SampleSet
    history: list[float] = field(default_factory=list)
    optimizer_evaluations: int = 0

    @property
    def best_bits(self) -> tuple[int, ...]:
        return self.samples.best.bits

    @property
    def best_energy(self) -> float:
        return self.samples.best.energy


class VQE:
    """VQE over a diagonal Ising Hamiltonian (or any PauliSum)."""

    def __init__(
        self,
        hamiltonian: "IsingHamiltonian | PauliSum",
        num_layers: int = 2,
        simulator: "StatevectorSimulator | None" = None,
    ):
        if num_layers < 1:
            raise ReproError("VQE needs at least one ansatz layer")
        self.hamiltonian = hamiltonian
        self.num_layers = num_layers
        self.num_qubits = hamiltonian.num_qubits
        self.simulator = simulator or StatevectorSimulator()
        if isinstance(hamiltonian, IsingHamiltonian):
            self._diagonal = hamiltonian.energies()
        elif hamiltonian.is_diagonal():
            self._diagonal = hamiltonian.diagonal()
        else:
            self._diagonal = None
            self._matrix = hamiltonian.matrix()

    @classmethod
    def from_qubo(cls, model: QuboModel, num_layers: int = 2) -> "VQE":
        return cls(model.to_ising(), num_layers=num_layers)

    @property
    def num_parameters(self) -> int:
        return self.num_qubits * (self.num_layers + 1)

    def ansatz(self, params: np.ndarray) -> QuantumCircuit:
        return hardware_efficient_ansatz(self.num_qubits, self.num_layers, params)

    def expectation(self, params: np.ndarray) -> float:
        state = self.simulator.run(self.ansatz(params))
        if self._diagonal is not None:
            return state.expectation_diagonal(self._diagonal)
        return float(np.real(state.expectation_matrix(self._matrix)))

    def optimize(
        self,
        optimizer: str = "COBYLA",
        maxiter: int = 300,
        restarts: int = 2,
        rng=None,
    ) -> OptimizerResult:
        rng = ensure_rng(rng)
        best: "OptimizerResult | None" = None
        for _ in range(restarts):
            x0 = rng.uniform(-np.pi / 4, np.pi / 4, size=self.num_parameters)
            if optimizer.lower() == "spsa":
                result = SPSAOptimizer(maxiter=maxiter).minimize(self.expectation, x0, rng=rng)
            else:
                result = scipy_minimize(self.expectation, x0, method=optimizer, maxiter=maxiter)
            if best is None or result.value < best.value:
                best = result
        assert best is not None
        return best

    def sample(self, params: np.ndarray, shots: int = 512, rng=None) -> SampleSet:
        rng = ensure_rng(rng)
        state = self.simulator.run(self.ansatz(params))
        counts = state.sample_counts(shots, rng=rng)
        if self._diagonal is None:
            raise ReproError("sampling assignments requires a diagonal Hamiltonian")
        samples = [
            Sample(index_to_bits(int(b, 2), self.num_qubits), float(self._diagonal[int(b, 2)]), c)
            for b, c in counts.items()
        ]
        return SampleSet(samples, info={"solver": "vqe", "shots": shots})

    def run(
        self,
        optimizer: str = "COBYLA",
        maxiter: int = 300,
        restarts: int = 2,
        shots: int = 512,
        rng=None,
    ) -> VQEResult:
        rng = ensure_rng(rng)
        opt = self.optimize(optimizer=optimizer, maxiter=maxiter, restarts=restarts, rng=rng)
        samples = self.sample(opt.params, shots=shots, rng=rng)
        return VQEResult(
            params=opt.params,
            energy=opt.value,
            samples=samples,
            history=opt.history,
            optimizer_evaluations=opt.evaluations,
        )
