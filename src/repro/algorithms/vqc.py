"""Variational quantum circuits for learning tasks (Chen et al. [58]).

The data-re-uploading circuit here backs the Winker et al. [27] approach of
treating join ordering as a reinforcement-learning problem with a quantum
policy: features are angle-encoded, interleaved with trainable rotation
layers, and the measurement distribution over a subset of qubits becomes a
policy over discrete actions.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ReproError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.pauli import PauliString, PauliSum
from repro.quantum.simulator import StatevectorSimulator
from repro.quantum.state import Statevector


class VariationalCircuit:
    """Data re-uploading variational circuit.

    Layout per layer: RY-encode the (tiled) feature vector, then trainable
    RY and RZ rotations on every qubit, then a CZ entangling chain.  With
    ``reupload=True`` the encoding repeats every layer, which is what gives
    shallow circuits nonlinear expressivity.

    Parameters are a flat vector of length :attr:`num_parameters`
    (= ``2 * num_qubits * num_layers``).
    """

    def __init__(
        self,
        num_qubits: int,
        num_layers: int = 2,
        reupload: bool = True,
        simulator: "StatevectorSimulator | None" = None,
    ):
        if num_qubits < 1 or num_layers < 1:
            raise ReproError("VariationalCircuit needs >= 1 qubit and >= 1 layer")
        self.num_qubits = num_qubits
        self.num_layers = num_layers
        self.reupload = reupload
        self.simulator = simulator or StatevectorSimulator()

    @property
    def num_parameters(self) -> int:
        return 2 * self.num_qubits * self.num_layers

    def initial_parameters(self, rng) -> np.ndarray:
        """Small random angles (break symmetry without barren plateaus)."""
        return rng.uniform(-0.1, 0.1, size=self.num_parameters)

    def circuit(self, features: np.ndarray, params: np.ndarray) -> QuantumCircuit:
        features = np.asarray(features, dtype=float).reshape(-1)
        params = np.asarray(params, dtype=float)
        if params.size != self.num_parameters:
            raise ReproError(f"expected {self.num_parameters} parameters, got {params.size}")
        qc = QuantumCircuit(self.num_qubits, name="vqc")
        k = 0
        for layer in range(self.num_layers):
            if layer == 0 or self.reupload:
                self._encode(qc, features)
            for q in range(self.num_qubits):
                qc.ry(params[k], q)
                k += 1
            for q in range(self.num_qubits):
                qc.rz(params[k], q)
                k += 1
            for q in range(self.num_qubits - 1):
                qc.cz(q, q + 1)
        return qc

    def _encode(self, qc: QuantumCircuit, features: np.ndarray) -> None:
        """Angle-encode features, tiling/truncating to the qubit count."""
        if features.size == 0:
            return
        for q in range(self.num_qubits):
            qc.ry(float(features[q % features.size]) * math.pi, q)

    def state(self, features: np.ndarray, params: np.ndarray) -> Statevector:
        return self.simulator.run(self.circuit(features, params))

    def probabilities(self, features: np.ndarray, params: np.ndarray) -> np.ndarray:
        """Measurement distribution over all basis states."""
        return self.state(features, params).probabilities()

    def expectation_z(self, features: np.ndarray, params: np.ndarray, qubit: int = 0) -> float:
        """``<Z_qubit>`` — the standard binary-classifier readout."""
        string = "".join("Z" if q == qubit else "I" for q in range(self.num_qubits))
        return PauliSum([PauliString(string)]).expectation(self.state(features, params))

    def policy(
        self,
        features: np.ndarray,
        params: np.ndarray,
        num_actions: int,
        valid_actions: "list[int] | None" = None,
        epsilon: float = 1e-6,
    ) -> np.ndarray:
        """A probability distribution over ``num_actions`` discrete actions.

        Reads the marginal distribution of the first ``ceil(log2 A)`` qubits,
        truncates to the action count, masks invalid actions and
        renormalises.  ``epsilon`` keeps every valid action reachable so
        REINFORCE log-gradients stay finite.
        """
        if num_actions < 1:
            raise ReproError("need at least one action")
        needed = max(1, (num_actions - 1).bit_length())
        if needed > self.num_qubits:
            raise ReproError(f"{num_actions} actions need {needed} qubits, circuit has {self.num_qubits}")
        marg = self.state(features, params).marginal_probabilities(list(range(needed)))
        probs = np.array(marg[:num_actions], dtype=float) + epsilon
        if valid_actions is not None:
            mask = np.zeros(num_actions)
            for a in valid_actions:
                mask[a] = 1.0
            probs = probs * mask
        total = probs.sum()
        if total <= 0:
            raise ReproError("policy has no valid action with positive probability")
        return probs / total
