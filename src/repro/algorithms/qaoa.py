"""Quantum Approximate Optimization Algorithm (Farhi et al. [54]).

QAOA is the workhorse of the gate-based Table I entries: MQO [21], [22],
join ordering [23]-[26] and schema matching [28] all run their QUBOs through
it.  The implementation targets diagonal Ising cost Hamiltonians produced by
:func:`repro.qubo.ising.qubo_to_ising`, computes exact expectations from the
final statevector, and samples assignments at the optimised angles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.optimizers import OptimizerResult, SPSAOptimizer, scipy_minimize
from repro.exceptions import ReproError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.pauli import IsingHamiltonian
from repro.quantum.simulator import StatevectorSimulator
from repro.qubo.model import QuboModel
from repro.qubo.sampleset import SampleSet
from repro.utils.bits import index_to_bits
from repro.utils.rngtools import ensure_rng


@dataclass
class QAOAResult:
    """Optimised angles plus the sampled solutions."""

    params: np.ndarray
    expectation: float
    samples: SampleSet
    history: list[float] = field(default_factory=list)
    num_layers: int = 1
    optimizer_evaluations: int = 0

    @property
    def best_bits(self) -> tuple[int, ...]:
        return self.samples.best.bits

    @property
    def best_energy(self) -> float:
        return self.samples.best.energy


class QAOA:
    """Depth-``p`` QAOA on a diagonal cost Hamiltonian."""

    def __init__(
        self,
        hamiltonian: IsingHamiltonian,
        num_layers: int = 2,
        simulator: "StatevectorSimulator | None" = None,
    ):
        if num_layers < 1:
            raise ReproError("QAOA needs at least one layer")
        self.hamiltonian = hamiltonian
        self.num_layers = num_layers
        self.num_qubits = hamiltonian.num_qubits
        self.simulator = simulator or StatevectorSimulator()
        self._energies = hamiltonian.energies()

    @classmethod
    def from_qubo(cls, model: QuboModel, num_layers: int = 2) -> "QAOA":
        """QAOA instance whose qubit ``j`` is QUBO variable ``j``."""
        return cls(model.to_ising(), num_layers=num_layers)

    @property
    def num_parameters(self) -> int:
        """``2p``: one gamma and one beta per layer."""
        return 2 * self.num_layers

    def circuit(self, params: np.ndarray) -> QuantumCircuit:
        """The QAOA ansatz at the given ``(gammas..., betas...)`` angles."""
        params = np.asarray(params, dtype=float)
        if params.size != self.num_parameters:
            raise ReproError(f"expected {self.num_parameters} parameters, got {params.size}")
        gammas = params[: self.num_layers]
        betas = params[self.num_layers :]
        qc = QuantumCircuit(self.num_qubits, name=f"qaoa_p{self.num_layers}")
        qc.h_all()
        for gamma, beta in zip(gammas, betas):
            for i, h in self.hamiltonian.linear.items():
                if h:
                    qc.rz(2.0 * gamma * h, i)
            for (i, j), jij in self.hamiltonian.quadratic.items():
                if jij:
                    qc.rzz(2.0 * gamma * jij, i, j)
            for q in range(self.num_qubits):
                qc.rx(2.0 * beta, q)
        return qc

    def expectation(self, params: np.ndarray) -> float:
        """Exact ``<H>`` in the ansatz state (offset included)."""
        state = self.simulator.run(self.circuit(params))
        return state.expectation_diagonal(self._energies)

    def optimize(
        self,
        optimizer: str = "COBYLA",
        maxiter: int = 150,
        restarts: int = 2,
        rng=None,
        initial_params: "np.ndarray | None" = None,
    ) -> OptimizerResult:
        """Tune the angles; returns the best restart's result."""
        rng = ensure_rng(rng)
        best: "OptimizerResult | None" = None
        for r in range(restarts):
            if initial_params is not None and r == 0:
                x0 = np.asarray(initial_params, dtype=float)
            else:
                x0 = rng.uniform(0.05, 0.6, size=self.num_parameters)
            if optimizer.lower() == "spsa":
                result = SPSAOptimizer(maxiter=maxiter).minimize(self.expectation, x0, rng=rng)
            else:
                result = scipy_minimize(self.expectation, x0, method=optimizer, maxiter=maxiter)
            if best is None or result.value < best.value:
                best = result
        assert best is not None
        return best

    def sample(self, params: np.ndarray, shots: int = 512, rng=None) -> SampleSet:
        """Measure the ansatz state ``shots`` times; energies are exact."""
        rng = ensure_rng(rng)
        state = self.simulator.run(self.circuit(params))
        counts = state.sample_counts(shots, rng=rng)
        from repro.qubo.sampleset import Sample

        samples = []
        for bitstring, c in counts.items():
            idx = int(bitstring, 2)
            bits = index_to_bits(idx, self.num_qubits)
            samples.append(Sample(bits, float(self._energies[idx]), num_occurrences=c))
        return SampleSet(samples, info={"solver": "qaoa", "shots": shots})

    def run(
        self,
        optimizer: str = "COBYLA",
        maxiter: int = 150,
        restarts: int = 2,
        shots: int = 512,
        rng=None,
    ) -> QAOAResult:
        """Optimise angles, then sample solutions at the optimum."""
        rng = ensure_rng(rng)
        opt = self.optimize(optimizer=optimizer, maxiter=maxiter, restarts=restarts, rng=rng)
        samples = self.sample(opt.params, shots=shots, rng=rng)
        return QAOAResult(
            params=opt.params,
            expectation=opt.value,
            samples=samples,
            history=opt.history,
            num_layers=self.num_layers,
            optimizer_evaluations=opt.evaluations,
        )
