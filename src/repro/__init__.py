"""qdmlib — Quantum Data Management, from theory to opportunities.

A full-stack reproduction of Hai, Hung & Feld, *Quantum Data Management:
From Theory to Opportunities* (ICDE 2024).  The library ships:

* :mod:`repro.quantum` — gate-model simulation substrate (circuits,
  statevector + density-matrix simulators, noise).
* :mod:`repro.qubo` / :mod:`repro.annealing` — QUBO modelling and the
  annealing stand-in for D-Wave hardware (SA, path-integral SQA, Chimera
  minor embedding).
* :mod:`repro.algorithms` — Grover, QAOA, VQE, QFT/QPE, variational
  circuits and classical optimizers.
* :mod:`repro.db` — classical relational substrate (relations, cost model,
  join-ordering DP, SQL subset, transactions/2PL).
* :mod:`repro.mqo`, :mod:`repro.joinorder`, :mod:`repro.integration`,
  :mod:`repro.txn` — the Table I problem mappings (multiple query
  optimization, join ordering, schema matching, transaction scheduling).
* :mod:`repro.qdb` — quantum database search, set operations, DML, and the
  mini quantum query language.
* :mod:`repro.games` — nonlocal games (CHSH, GHZ, XOR games).
* :mod:`repro.qnet` / :mod:`repro.dqdm` — quantum-internet substrate and
  distributed quantum data management (Sec. IV opportunities).
* :mod:`repro.api` — the unified solver facade tying the Table I layers
  together: ``repro.solve(problem, backend=...)`` runs any workload's
  Problem -> QUBO -> Backend -> Result pipeline on any registered engine.
* :mod:`repro.obs` — stdlib-only end-to-end tracing, the flight recorder
  behind the service's ``/v1/traces``, and structured logging.
* :mod:`repro.workload` — the SQL front end: scripts of SELECT/DML compile
  into Table I problem batches (``repro.compile_workload`` /
  ``repro.run_workload``) executed through one ``solve_many`` call.
"""

__version__ = "1.6.0"

from repro import obs
from repro.api import (
    AdaptiveScheduler,
    BackendScoreboard,
    EngineStore,
    ExecutionPlan,
    Problem,
    ResultCache,
    SolveResult,
    as_problem,
    as_problems,
    compile_plan,
    execute_plan,
    get_backend,
    list_backends,
    list_executors,
    register_backend,
    solve,
    solve_many,
    solve_portfolio,
)
from repro.api import (
    WorkloadPlan,
    WorkloadReport,
    compile_workload,
    run_workload,
)
from repro.exceptions import (
    EmbeddingError,
    InfeasibleError,
    NoCloningError,
    ParseError,
    ProtocolError,
    ReproError,
    SimulationError,
)

__all__ = [
    "__version__",
    "ReproError",
    "SimulationError",
    "NoCloningError",
    "EmbeddingError",
    "InfeasibleError",
    "ParseError",
    "ProtocolError",
    "Problem",
    "SolveResult",
    "as_problem",
    "register_backend",
    "get_backend",
    "list_backends",
    "solve",
    "solve_portfolio",
    "solve_many",
    "AdaptiveScheduler",
    "BackendScoreboard",
    "EngineStore",
    "obs",
    "WorkloadPlan",
    "WorkloadReport",
    "compile_workload",
    "run_workload",
]
