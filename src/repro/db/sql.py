"""A small SQL dialect: SELECT-FROM-WHERE with equi-joins and filters.

Grammar (case-insensitive keywords)::

    query   := SELECT cols FROM tables [WHERE cond (AND cond)*]
    cols    := '*' | colref (',' colref)*
    tables  := name (',' name)*
    cond    := colref op (colref | literal)
    op      := '=' | '!=' | '<' | '<=' | '>' | '>='
    colref  := [table '.'] column
    literal := integer | float | 'single-quoted string'

The parser produces a :class:`ParsedQuery`; :func:`execute` runs it against
a :class:`~repro.db.catalog.Catalog` with registered relations, using the
cost-based optimizer to pick the join order.  The same front end backs the
quantum query language of :mod:`repro.qdb.qql`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Sequence

from repro.db.catalog import Catalog
from repro.db.cost import CostModel
from repro.db.dp import dp_optimal_bushy
from repro.db.query import JoinGraph
from repro.db.relation import Relation
from repro.exceptions import ParseError, ReproError

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<string>'[^']*')|(?P<number>\d+\.\d+|\d+)|(?P<op><=|>=|!=|=|<|>)"
    r"|(?P<punct>[,.*()])|(?P<word>[A-Za-z_][A-Za-z_0-9]*))"
)

_COMPARATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class ColumnRef:
    """A possibly table-qualified column reference."""

    table: "str | None"
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Condition:
    """One comparison in the WHERE clause."""

    left: ColumnRef
    op: str
    right: "ColumnRef | int | float | str"

    @property
    def is_join(self) -> bool:
        return isinstance(self.right, ColumnRef)


@dataclass
class ParsedQuery:
    """Outcome of parsing a SELECT statement."""

    tables: list[str]
    projections: "list[ColumnRef] | None"  # None means SELECT *
    conditions: list[Condition] = field(default_factory=list)

    @property
    def join_conditions(self) -> list[Condition]:
        return [c for c in self.conditions if c.is_join]

    @property
    def filter_conditions(self) -> list[Condition]:
        return [c for c in self.conditions if not c.is_join]


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip():
                raise ParseError(f"unexpected character {text[pos]!r} at position {pos}")
            break
        pos = match.end()
        for kind in ("string", "number", "op", "punct", "word"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> "tuple[str, str] | None":
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of query")
        self.pos += 1
        return tok

    def expect_word(self, word: str) -> None:
        kind, value = self.next()
        if kind != "word" or value.upper() != word:
            raise ParseError(f"expected {word}, got {value!r}")

    def at_word(self, word: str) -> bool:
        tok = self.peek()
        return tok is not None and tok[0] == "word" and tok[1].upper() == word

    def parse_colref(self) -> ColumnRef:
        kind, value = self.next()
        if kind != "word":
            raise ParseError(f"expected column name, got {value!r}")
        tok = self.peek()
        if tok is not None and tok == ("punct", "."):
            self.next()
            kind2, column = self.next()
            if kind2 != "word":
                raise ParseError(f"expected column after '.', got {column!r}")
            return ColumnRef(value, column)
        return ColumnRef(None, value)

    def parse_value(self):
        tok = self.peek()
        if tok is None:
            raise ParseError("expected a value")
        kind, value = tok
        if kind == "number":
            self.next()
            return float(value) if "." in value else int(value)
        if kind == "string":
            self.next()
            return value[1:-1]
        return self.parse_colref()


def parse_sql(text: str) -> ParsedQuery:
    """Parse a SELECT statement into a :class:`ParsedQuery`."""
    parser = _Parser(_tokenize(text))
    parser.expect_word("SELECT")
    projections: "list[ColumnRef] | None"
    if parser.peek() == ("punct", "*"):
        parser.next()
        projections = None
    else:
        projections = [parser.parse_colref()]
        while parser.peek() == ("punct", ","):
            parser.next()
            projections.append(parser.parse_colref())
    parser.expect_word("FROM")
    tables = []
    kind, value = parser.next()
    if kind != "word":
        raise ParseError(f"expected table name, got {value!r}")
    tables.append(value)
    while parser.peek() == ("punct", ","):
        parser.next()
        kind, value = parser.next()
        if kind != "word":
            raise ParseError(f"expected table name, got {value!r}")
        tables.append(value)
    conditions: list[Condition] = []
    if parser.at_word("WHERE"):
        parser.next()
        while True:
            left = parser.parse_colref()
            kind, op = parser.next()
            if kind != "op":
                raise ParseError(f"expected comparison operator, got {op!r}")
            right = parser.parse_value()
            conditions.append(Condition(left, op, right))
            if parser.at_word("AND"):
                parser.next()
                continue
            break
    if parser.peek() is not None:
        raise ParseError(f"trailing input near {parser.peek()[1]!r}")
    if len(set(tables)) != len(tables):
        raise ParseError("duplicate table names (aliases are not supported)")
    return ParsedQuery(tables=tables, projections=projections, conditions=conditions)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def _resolve_column(ref: ColumnRef, relations: dict[str, Relation]) -> tuple[str, str]:
    """Return ``(table, column)`` for a reference, inferring the table."""
    if ref.table is not None:
        if ref.table not in relations:
            raise ReproError(f"unknown table {ref.table!r} in column reference")
        relations[ref.table].column_index(ref.column)  # validates
        return ref.table, ref.column
    owners = [t for t, rel in relations.items() if ref.column in rel.columns]
    if not owners:
        raise ReproError(f"column {ref.column!r} not found in any table")
    if len(owners) > 1:
        raise ReproError(f"ambiguous column {ref.column!r} (in {owners})")
    return owners[0], ref.column


def _qualified_index(relation: Relation, table: str, column: str) -> int:
    """Index of ``table.column`` in a (possibly joined) relation."""
    qualified = f"{table}.{column}"
    if qualified in relation.columns:
        return relation.columns.index(qualified)
    if column in relation.columns:
        return relation.columns.index(column)
    raise ReproError(f"column {qualified} missing from intermediate result")


def execute(query: "ParsedQuery | str", catalog: Catalog) -> Relation:
    """Run a parsed query against concrete relations in ``catalog``.

    Filters are pushed down; the join order is chosen by the bushy DP
    optimizer over estimated selectivities.
    """
    if isinstance(query, str):
        query = parse_sql(query)
    relations = {t: catalog.relation(t) for t in query.tables}

    # Push down filters.
    filtered: dict[str, Relation] = {}
    for table, rel in relations.items():
        preds = []
        for cond in query.filter_conditions:
            t, c = _resolve_column(cond.left, relations)
            if t == table:
                idx = rel.column_index(c)
                comparator = _COMPARATORS[cond.op]
                preds.append((idx, comparator, cond.right))
        if preds:
            rel = rel.select(
                lambda row, preds=preds: all(cmp(row[i], v) for i, cmp, v in preds),
                name=table,
            )
            rel.name = table
        filtered[table] = rel

    if len(query.tables) == 1:
        result = filtered[query.tables[0]]
    else:
        result = _join_all(query, filtered, catalog)

    if query.projections is not None:
        out_cols = []
        for ref in query.projections:
            t, c = _resolve_column(ref, relations)
            idx = _qualified_index(result, t, c)
            out_cols.append(result.columns[idx])
        result = result.project(out_cols)
    return result


def _join_all(query: ParsedQuery, filtered: dict[str, Relation], catalog: Catalog) -> Relation:
    """Join all tables along the equi-join conditions, DP-ordered."""
    join_specs: dict[tuple[str, str], tuple[str, str]] = {}
    jg = JoinGraph()
    for table, rel in filtered.items():
        jg.add_relation(table, max(rel.cardinality, 1))
    for cond in query.join_conditions:
        if cond.op != "=":
            continue
        lt, lc = _resolve_column(cond.left, filtered)
        rt, rc = _resolve_column(cond.right, filtered)
        if lt == rt:
            continue
        sel = catalog.equijoin_selectivity(lt, lc, rt, rc)
        jg.add_join(lt, rt, sel)
        key = (min(lt, rt), max(lt, rt))
        join_specs[key] = (lc, rc) if lt < rt else (rc, lc)

    tree, _ = dp_optimal_bushy(jg, CostModel(jg)) if jg.is_connected() else (None, 0.0)
    if tree is None:
        # Disconnected: fall back to joining in FROM order with cross products.
        order = list(query.tables)
        result = filtered[order[0]]
        for t in order[1:]:
            result = _pairwise_join(result, filtered[t], t, join_specs)
        return result
    return _execute_tree(tree, filtered, join_specs)


def _execute_tree(tree, filtered: dict[str, Relation], join_specs) -> Relation:
    if tree.is_leaf:
        return filtered[tree.relation]
    left = _execute_tree(tree.left, filtered, join_specs)
    right = _execute_tree(tree.right, filtered, join_specs)
    # Find a join spec connecting the two sides.
    for lrel in sorted(tree.left.relations()):
        for rrel in sorted(tree.right.relations()):
            key = (min(lrel, rrel), max(lrel, rrel))
            if key in join_specs:
                lc, rc = join_specs[key]
                if lrel > rrel:
                    lc, rc = rc, lc
                li = _qualified_index(left, lrel, lc)
                ri = _qualified_index(right, rrel, rc)
                return left.nested_loop_join(right, lambda a, b, li=li, ri=ri: a[li] == b[ri])
    return left.cross(right)


def _pairwise_join(result: Relation, rel: Relation, table: str, join_specs) -> Relation:
    for (t1, t2), (c1, c2) in join_specs.items():
        if table == t1:
            other, other_col, my_col = t2, c2, c1
        elif table == t2:
            other, other_col, my_col = t1, c1, c2
        else:
            continue
        try:
            li = _qualified_index(result, other, other_col)
            ri = _qualified_index(rel, table, my_col)
        except ReproError:
            continue
        return result.nested_loop_join(rel, lambda a, b, li=li, ri=ri: a[li] == b[ri])
    return result.cross(rel)
