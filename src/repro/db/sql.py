"""A small SQL dialect: scripts of SELECTs and DML over a :class:`Catalog`.

Grammar (case-insensitive keywords)::

    script  := statement (';' statement)* [';']
    statement := select | insert | update | delete
    select  := SELECT cols FROM tables [WHERE cond (AND cond)*]
    cols    := '*' | proj (',' proj)*
    proj    := colref | name '.' '*'
    tables  := table (',' table)*
    table   := name [[AS] alias]
    insert  := INSERT INTO name ['(' name (',' name)* ')']
               VALUES row (',' row)*
    row     := '(' literal (',' literal)* ')'
    update  := UPDATE name SET name '=' literal (',' name '=' literal)*
               [WHERE cond (AND cond)*]
    delete  := DELETE FROM name [WHERE cond (AND cond)*]
    cond    := colref op (colref | literal)
    op      := '=' | '!=' | '<' | '<=' | '>' | '>='
    colref  := [name '.'] column
    literal := integer | float | 'single-quoted string'

The parser produces one statement object per input statement —
:class:`ParsedQuery` for SELECTs, :class:`InsertStatement` /
:class:`UpdateStatement` / :class:`DeleteStatement` for DML;
:func:`execute` runs a SELECT against a
:class:`~repro.db.catalog.Catalog` with registered relations, using the
cost-based optimizer to pick the join order.  :func:`parse_script` is the
front door of the SQL workload compiler (:mod:`repro.workload`), which
plans scripts into Table I problem instances; :func:`subexpression_keys`
supplies the canonical scan/join keys its MQO sharing detection matches
across statements.

**Relation to QQL** (:mod:`repro.qdb.qql`): the two front ends share the
``SELECT * FROM t [WHERE ...]``, ``INSERT INTO t VALUES (...)``,
``DELETE FROM t WHERE ...`` and ``UPDATE t SET ... WHERE ...`` statement
shapes (and the same six comparison operators).  They diverge past that:
this dialect adds projections, multi-table FROM clauses with aliases
(hence self-joins), join predicates, and multi-statement scripts, while
QQL restricts predicates to the single ``key`` register but adds
``CREATE TABLE ... QUBITS n`` and the quantum set-operation / JOIN
productions (``INTERSECT`` / ``UNION`` / ``EXCEPT`` / ``JOIN``) that run
Grover-style kernels.

Doctest::

    >>> from repro.db.sql import parse_script
    >>> stmts = parse_script(
    ...     "SELECT * FROM users u, orders o WHERE u.uid = o.uid;"
    ...     "UPDATE users SET city = 'delft' WHERE uid = 3")
    >>> [s.kind for s in stmts]
    ['select', 'update']
    >>> stmts[0].tables
    ['u', 'o']
    >>> stmts[0].aliases
    {'u': 'users', 'o': 'orders'}
    >>> sorted(stmts[1].write_tables)
    ['users']
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.db.catalog import Catalog
from repro.db.cost import CostModel
from repro.db.dp import dp_optimal_bushy
from repro.db.query import JoinGraph
from repro.db.relation import Relation
from repro.exceptions import ParseError, ReproError

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<string>'[^']*')|(?P<number>\d+\.\d+|\d+)|(?P<op><=|>=|!=|=|<|>)"
    r"|(?P<punct>[,.*();])|(?P<word>[A-Za-z_][A-Za-z_0-9]*))"
)

_COMPARATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

#: Words that can never be a table alias (they end or continue a clause).
_RESERVED = {
    "SELECT", "FROM", "WHERE", "AND", "AS", "SET", "VALUES", "INTO",
    "INSERT", "UPDATE", "DELETE",
}


@dataclass(frozen=True)
class ColumnRef:
    """A possibly table-qualified column reference (``column`` may be ``*``)."""

    table: "str | None"
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Condition:
    """One comparison in the WHERE clause."""

    left: ColumnRef
    op: str
    right: "ColumnRef | int | float | str"

    @property
    def is_join(self) -> bool:
        return isinstance(self.right, ColumnRef)


@dataclass
class ParsedQuery:
    """Outcome of parsing a SELECT statement.

    ``tables`` lists the FROM-clause names *as referenced elsewhere in the
    query* — the alias when one was given, the table name otherwise; the
    ``aliases`` map recovers the base table behind each entry (identity
    for unaliased tables).  Aliasing is what makes self-joins expressible:
    ``FROM users u1, users u2`` yields two distinct join-graph nodes over
    one base table.
    """

    tables: list[str]
    projections: "list[ColumnRef] | None"  # None means SELECT *
    conditions: list[Condition] = field(default_factory=list)
    aliases: dict[str, str] = field(default_factory=dict)
    text: str = ""

    kind = "select"
    is_dml = False

    def base_table(self, name: str) -> str:
        """The catalog table behind a FROM-clause entry (alias-aware)."""
        return self.aliases.get(name, name)

    @property
    def join_conditions(self) -> list[Condition]:
        return [c for c in self.conditions if c.is_join]

    @property
    def filter_conditions(self) -> list[Condition]:
        return [c for c in self.conditions if not c.is_join]


@dataclass
class InsertStatement:
    """``INSERT INTO t [(cols)] VALUES (..), (..)``; one write per row."""

    table: str
    columns: "list[str] | None"
    rows: list[tuple]
    text: str = ""

    kind = "insert"
    is_dml = True

    @property
    def read_tables(self) -> set[str]:
        return set()

    @property
    def write_tables(self) -> set[str]:
        return {self.table}


@dataclass
class UpdateStatement:
    """``UPDATE t SET c = v [, ...] [WHERE ...]``; reads then writes ``t``."""

    table: str
    assignments: "list[tuple[str, int | float | str]]"
    conditions: list[Condition] = field(default_factory=list)
    text: str = ""

    kind = "update"
    is_dml = True

    @property
    def read_tables(self) -> set[str]:
        return {self.table} if self.conditions else set()

    @property
    def write_tables(self) -> set[str]:
        return {self.table}


@dataclass
class DeleteStatement:
    """``DELETE FROM t [WHERE ...]``; reads (when filtered) then writes ``t``."""

    table: str
    conditions: list[Condition] = field(default_factory=list)
    text: str = ""

    kind = "delete"
    is_dml = True

    @property
    def read_tables(self) -> set[str]:
        return {self.table} if self.conditions else set()

    @property
    def write_tables(self) -> set[str]:
        return {self.table}


#: Any statement :func:`parse_statement` can produce.
Statement = "ParsedQuery | InsertStatement | UpdateStatement | DeleteStatement"


def _tokenize(text: str) -> list[tuple[str, str, int]]:
    """Tokens as ``(kind, value, position)`` triples."""
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            rest = text[pos:]
            stripped = rest.lstrip()
            if stripped:
                at = pos + (len(rest) - len(stripped))
                raise ParseError(f"unexpected character {text[at]!r} at position {at}")
            break
        pos = match.end()
        for kind in ("string", "number", "op", "punct", "word"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value, match.start(kind)))
                break
    return tokens


class _Parser:
    """Recursive-descent parser over one statement's token stream.

    Every error names the offending token *and* its position in the
    statement text, so a caller staring at a 6-statement script sees
    exactly which character to fix.
    """

    def __init__(self, tokens: list[tuple[str, str, int]], text: str = ""):
        self.tokens = tokens
        self.text = text
        self.pos = 0

    def error(self, message: str, token: "tuple[str, str, int] | None" = None) -> ParseError:
        if token is None:
            where = f"at end of statement {self.text!r}"
        else:
            _, value, pos = token
            snippet = self.text[max(0, pos - 12) : pos + len(value) + 12]
            where = f"got {value!r} at position {pos} (near {snippet!r})"
        return ParseError(f"{message}: {where}")

    def peek(self) -> "tuple[str, str, int] | None":
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self, expect: str = "a token") -> tuple[str, str, int]:
        tok = self.peek()
        if tok is None:
            raise self.error(f"expected {expect}, found end of statement")
        self.pos += 1
        return tok

    def at_punct(self, punct: str) -> bool:
        tok = self.peek()
        return tok is not None and tok[0] == "punct" and tok[1] == punct

    def take_punct(self, punct: str) -> bool:
        if self.at_punct(punct):
            self.next()
            return True
        return False

    def expect_punct(self, punct: str) -> None:
        tok = self.peek()
        if not self.at_punct(punct):
            raise self.error(f"expected {punct!r}", tok)
        self.next()

    def expect_word(self, word: str) -> None:
        tok = self.peek()
        if tok is None or tok[0] != "word" or tok[1].upper() != word:
            raise self.error(f"expected {word}", tok)
        self.next()

    def at_word(self, word: str) -> bool:
        tok = self.peek()
        return tok is not None and tok[0] == "word" and tok[1].upper() == word

    def expect_name(self, what: str) -> str:
        tok = self.peek()
        if tok is None or tok[0] != "word" or tok[1].upper() in _RESERVED:
            raise self.error(f"expected {what}", tok)
        self.next()
        return tok[1]

    def parse_colref(self, star_ok: bool = False) -> ColumnRef:
        name = self.expect_name("a column name")
        if self.at_punct("."):
            self.next()
            if star_ok and self.at_punct("*"):
                self.next()
                return ColumnRef(name, "*")
            column = self.expect_name("a column name after '.'")
            return ColumnRef(name, column)
        return ColumnRef(None, name)

    def parse_literal(self):
        tok = self.peek()
        if tok is None:
            raise self.error("expected a literal value")
        kind, value, _ = tok
        if kind == "number":
            self.next()
            return float(value) if "." in value else int(value)
        if kind == "string":
            self.next()
            return value[1:-1]
        raise self.error("expected a literal value", tok)

    def parse_value(self):
        tok = self.peek()
        if tok is not None and tok[0] in ("number", "string"):
            return self.parse_literal()
        return self.parse_colref()

    def parse_conditions(self) -> list[Condition]:
        conditions: list[Condition] = []
        while True:
            left = self.parse_colref()
            tok = self.next("a comparison operator")
            if tok[0] != "op":
                raise self.error("expected a comparison operator", tok)
            right = self.parse_value()
            conditions.append(Condition(left, tok[1], right))
            if self.at_word("AND"):
                self.next()
                continue
            break
        return conditions

    def expect_done(self) -> None:
        tok = self.peek()
        if tok is not None:
            raise self.error("trailing input", tok)


# ---------------------------------------------------------------------------
# Statement parsing
# ---------------------------------------------------------------------------


def _parse_select(parser: _Parser, text: str) -> ParsedQuery:
    parser.expect_word("SELECT")
    projections: "list[ColumnRef] | None"
    if parser.at_punct("*"):
        parser.next()
        projections = None
    else:
        projections = [parser.parse_colref(star_ok=True)]
        while parser.take_punct(","):
            projections.append(parser.parse_colref(star_ok=True))
    parser.expect_word("FROM")
    tables: list[str] = []
    aliases: dict[str, str] = {}
    while True:
        name = parser.expect_name("a table name")
        alias = name
        if parser.at_word("AS"):
            parser.next()
            alias = parser.expect_name("an alias after AS")
        else:
            tok = parser.peek()
            if tok is not None and tok[0] == "word" and tok[1].upper() not in _RESERVED:
                parser.next()
                alias = tok[1]
        if alias in aliases:
            raise parser.error(
                f"duplicate table name or alias {alias!r} (alias self-joins as "
                f"'{name} {alias}2')"
            )
        tables.append(alias)
        aliases[alias] = name
        if not parser.take_punct(","):
            break
    conditions: list[Condition] = []
    if parser.at_word("WHERE"):
        parser.next()
        conditions = parser.parse_conditions()
    parser.expect_done()
    return ParsedQuery(
        tables=tables,
        projections=projections,
        conditions=conditions,
        aliases=aliases,
        text=text,
    )


def _parse_insert(parser: _Parser, text: str) -> InsertStatement:
    parser.expect_word("INSERT")
    parser.expect_word("INTO")
    table = parser.expect_name("a table name")
    columns: "list[str] | None" = None
    if parser.at_punct("("):
        parser.next()
        columns = [parser.expect_name("a column name")]
        while parser.take_punct(","):
            columns.append(parser.expect_name("a column name"))
        parser.expect_punct(")")
    parser.expect_word("VALUES")
    rows: list[tuple] = []
    while True:
        parser.expect_punct("(")
        row = [parser.parse_literal()]
        while parser.take_punct(","):
            row.append(parser.parse_literal())
        parser.expect_punct(")")
        if columns is not None and len(row) != len(columns):
            raise parser.error(
                f"VALUES row has {len(row)} values for {len(columns)} columns"
            )
        rows.append(tuple(row))
        if not parser.take_punct(","):
            break
    parser.expect_done()
    return InsertStatement(table=table, columns=columns, rows=rows, text=text)


def _parse_update(parser: _Parser, text: str) -> UpdateStatement:
    parser.expect_word("UPDATE")
    table = parser.expect_name("a table name")
    parser.expect_word("SET")
    assignments = []
    while True:
        column = parser.expect_name("a column name")
        tok = parser.next("'='")
        if tok[0] != "op" or tok[1] != "=":
            raise parser.error("expected '=' in SET clause", tok)
        assignments.append((column, parser.parse_literal()))
        if not parser.take_punct(","):
            break
    conditions: list[Condition] = []
    if parser.at_word("WHERE"):
        parser.next()
        conditions = parser.parse_conditions()
    parser.expect_done()
    return UpdateStatement(table=table, assignments=assignments, conditions=conditions, text=text)


def _parse_delete(parser: _Parser, text: str) -> DeleteStatement:
    parser.expect_word("DELETE")
    parser.expect_word("FROM")
    table = parser.expect_name("a table name")
    conditions: list[Condition] = []
    if parser.at_word("WHERE"):
        parser.next()
        conditions = parser.parse_conditions()
    parser.expect_done()
    return DeleteStatement(table=table, conditions=conditions, text=text)


_STATEMENT_PARSERS = {
    "SELECT": _parse_select,
    "INSERT": _parse_insert,
    "UPDATE": _parse_update,
    "DELETE": _parse_delete,
}


def parse_statement(text: str):
    """Parse one statement (SELECT, INSERT, UPDATE, or DELETE)."""
    stripped = text.strip().rstrip(";").strip()
    tokens = _tokenize(stripped)
    parser = _Parser(tokens, stripped)
    tok = parser.peek()
    if tok is None:
        raise ParseError("empty statement")
    handler = _STATEMENT_PARSERS.get(tok[1].upper()) if tok[0] == "word" else None
    if handler is None:
        raise parser.error("expected SELECT, INSERT, UPDATE or DELETE", tok)
    return handler(parser, stripped)


def parse_sql(text: str) -> ParsedQuery:
    """Parse a single SELECT statement into a :class:`ParsedQuery`."""
    statement = parse_statement(text)
    if not isinstance(statement, ParsedQuery):
        raise ParseError(
            f"expected a SELECT statement, got {statement.kind.upper()} "
            f"(use parse_statement / parse_script for DML)"
        )
    return statement


def split_script(text: str) -> list[str]:
    """Split a script on ``;`` outside single-quoted strings."""
    pieces: list[str] = []
    current: list[str] = []
    in_string = False
    for ch in text:
        if ch == "'":
            in_string = not in_string
        if ch == ";" and not in_string:
            pieces.append("".join(current))
            current = []
        else:
            current.append(ch)
    pieces.append("".join(current))
    return [p.strip() for p in pieces if p.strip()]


def parse_script(text: str) -> list:
    """Parse a multi-statement script; errors name the failing statement."""
    statements = []
    for number, piece in enumerate(split_script(text)):
        try:
            statements.append(parse_statement(piece))
        except ParseError as exc:
            raise ParseError(f"statement {number + 1}: {exc}") from None
    return statements


# ---------------------------------------------------------------------------
# Subexpression canonicalisation (MQO sharing detection)
# ---------------------------------------------------------------------------


def _canonical_filter(query: ParsedQuery, cond: Condition, table: str):
    """Alias-independent form of a filter, or None if it names another table."""
    if cond.left.table is not None and cond.left.table != table:
        return None
    return (query.base_table(table), cond.left.column, cond.op, cond.right)


def scan_key(query: ParsedQuery, table: str) -> tuple:
    """Canonical key of one filtered base-table scan.

    Alias-independent: ``users u`` filtered on ``u.city = 'delft'`` in one
    query and plain ``users WHERE city = 'delft'`` in another produce the
    same key, which is exactly the sharing the MQO instance rewards.
    Unqualified filters are attributed to a table only when the reference
    is unambiguous *syntactically* (single-table query or explicit
    qualifier).
    """
    filters = []
    for cond in query.filter_conditions:
        if cond.left.table == table or (cond.left.table is None and len(query.tables) == 1):
            canon = _canonical_filter(query, cond, table)
            if canon is not None:
                filters.append(canon)
    return ("scan", query.base_table(table), tuple(sorted(map(repr, filters))))


def join_subset_key(query: ParsedQuery, tables: Iterable[str]) -> tuple:
    """Canonical key of the intermediate joining the given FROM entries."""
    subset = set(tables)
    scans = sorted(repr(scan_key(query, t)) for t in subset)
    joins = []
    for cond in query.join_conditions:
        lt, rt = cond.left.table, cond.right.table  # type: ignore[union-attr]
        if lt in subset and rt in subset:
            left = (query.base_table(lt), cond.left.column)
            right = (query.base_table(rt), cond.right.column)
            joins.append(repr((min(left, right), cond.op, max(left, right))))
    return ("join", tuple(scans), tuple(sorted(joins)))


def subexpression_fingerprint(key: tuple) -> str:
    """Short stable hex fingerprint of a canonical subexpression key."""
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:16]


def subexpression_keys(query: ParsedQuery) -> "frozenset[tuple]":
    """Every canonical subexpression a query materialises regardless of plan:
    its filtered scans, each joined pair, and the full join result."""
    keys = {scan_key(query, t) for t in query.tables}
    tables = set(query.tables)
    for cond in query.join_conditions:
        lt, rt = cond.left.table, cond.right.table  # type: ignore[union-attr]
        if lt in tables and rt in tables and lt != rt:
            keys.add(join_subset_key(query, (lt, rt)))
    if len(query.tables) > 2:
        keys.add(join_subset_key(query, query.tables))
    return frozenset(keys)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def _resolve_column(ref: ColumnRef, relations: dict[str, Relation]) -> tuple[str, str]:
    """Return ``(table, column)`` for a reference, inferring the table."""
    if ref.table is not None:
        if ref.table not in relations:
            raise ReproError(f"unknown table {ref.table!r} in column reference")
        relations[ref.table].column_index(ref.column)  # validates
        return ref.table, ref.column
    owners = [t for t, rel in relations.items() if ref.column in rel.columns]
    if not owners:
        raise ReproError(f"column {ref.column!r} not found in any table")
    if len(owners) > 1:
        raise ReproError(f"ambiguous column {ref.column!r} (in {owners})")
    return owners[0], ref.column


def _qualified_index(relation: Relation, table: str, column: str) -> int:
    """Index of ``table.column`` in a (possibly joined) relation."""
    qualified = f"{table}.{column}"
    if qualified in relation.columns:
        return relation.columns.index(qualified)
    if column in relation.columns:
        return relation.columns.index(column)
    raise ReproError(f"column {qualified} missing from intermediate result")


def execute(query: "ParsedQuery | str", catalog: Catalog) -> Relation:
    """Run a parsed query against concrete relations in ``catalog``.

    Filters are pushed down; the join order is chosen by the bushy DP
    optimizer over estimated selectivities.  Aliased tables (including
    self-joins) each get their own scan of the base relation.
    """
    if isinstance(query, str):
        query = parse_sql(query)
    relations: dict[str, Relation] = {}
    for alias in query.tables:
        base = query.base_table(alias)
        rel = catalog.relation(base)
        if alias != base:
            rel = Relation(alias, rel.columns, rel.rows)
        relations[alias] = rel

    # Push down filters.
    filtered: dict[str, Relation] = {}
    for table, rel in relations.items():
        preds = []
        for cond in query.filter_conditions:
            t, c = _resolve_column(cond.left, relations)
            if t == table:
                idx = rel.column_index(c)
                comparator = _COMPARATORS[cond.op]
                preds.append((idx, comparator, cond.right))
        if preds:
            rel = rel.select(
                lambda row, preds=preds: all(cmp(row[i], v) for i, cmp, v in preds),
                name=table,
            )
            rel.name = table
        filtered[table] = rel

    if len(query.tables) == 1:
        result = filtered[query.tables[0]]
    else:
        result = _join_all(query, filtered, catalog)

    # Column-to-column predicates the join step cannot consume — non-equi
    # comparisons and same-table comparisons — apply as post-join filters.
    for cond in query.join_conditions:
        lt, lc = _resolve_column(cond.left, relations)
        rt, rc = _resolve_column(cond.right, relations)
        if cond.op == "=" and lt != rt and len(query.tables) > 1:
            continue
        li = _qualified_index(result, lt, lc)
        ri = _qualified_index(result, rt, rc)
        comparator = _COMPARATORS[cond.op]
        result = result.select(
            lambda row, li=li, ri=ri, comparator=comparator: comparator(row[li], row[ri]),
            name=result.name,
        )

    if query.projections is not None:
        out_cols = []
        for ref in query.projections:
            if ref.column == "*":
                if ref.table not in relations:
                    raise ReproError(f"unknown table {ref.table!r} in qualified *")
                for c in relations[ref.table].columns:
                    idx = _qualified_index(result, ref.table, c)
                    out_cols.append(result.columns[idx])
                continue
            t, c = _resolve_column(ref, relations)
            idx = _qualified_index(result, t, c)
            out_cols.append(result.columns[idx])
        result = result.project(out_cols)
    return result


def _join_all(query: ParsedQuery, filtered: dict[str, Relation], catalog: Catalog) -> Relation:
    """Join all tables along the equi-join conditions, DP-ordered."""
    join_specs: dict[tuple[str, str], tuple[str, str]] = {}
    jg = JoinGraph()
    for table, rel in filtered.items():
        jg.add_relation(table, max(rel.cardinality, 1))
    for cond in query.join_conditions:
        if cond.op != "=":
            continue
        lt, lc = _resolve_column(cond.left, filtered)
        rt, rc = _resolve_column(cond.right, filtered)
        if lt == rt:
            continue
        sel = catalog.equijoin_selectivity(
            query.base_table(lt), lc, query.base_table(rt), rc
        )
        jg.add_join(lt, rt, sel)
        key = (min(lt, rt), max(lt, rt))
        join_specs[key] = (lc, rc) if lt < rt else (rc, lc)

    tree, _ = dp_optimal_bushy(jg, CostModel(jg)) if jg.is_connected() else (None, 0.0)
    if tree is None:
        # Disconnected: fall back to joining in FROM order with cross products.
        order = list(query.tables)
        result = filtered[order[0]]
        for t in order[1:]:
            result = _pairwise_join(result, filtered[t], t, join_specs)
        return result
    return _execute_tree(tree, filtered, join_specs)


def _execute_tree(tree, filtered: dict[str, Relation], join_specs) -> Relation:
    if tree.is_leaf:
        return filtered[tree.relation]
    left = _execute_tree(tree.left, filtered, join_specs)
    right = _execute_tree(tree.right, filtered, join_specs)
    # Find a join spec connecting the two sides.
    for lrel in sorted(tree.left.relations()):
        for rrel in sorted(tree.right.relations()):
            key = (min(lrel, rrel), max(lrel, rrel))
            if key in join_specs:
                lc, rc = join_specs[key]
                if lrel > rrel:
                    lc, rc = rc, lc
                li = _qualified_index(left, lrel, lc)
                ri = _qualified_index(right, rrel, rc)
                return left.nested_loop_join(right, lambda a, b, li=li, ri=ri: a[li] == b[ri])
    return left.cross(right)


def _pairwise_join(result: Relation, rel: Relation, table: str, join_specs) -> Relation:
    for (t1, t2), (c1, c2) in join_specs.items():
        if table == t1:
            other, other_col, my_col = t2, c2, c1
        elif table == t2:
            other, other_col, my_col = t1, c1, c2
        else:
            continue
        try:
            li = _qualified_index(result, other, other_col)
            ri = _qualified_index(rel, table, my_col)
        except ReproError:
            continue
        return result.nested_loop_join(rel, lambda a, b, li=li, ri=ri: a[li] == b[ri])
    return result.cross(rel)
