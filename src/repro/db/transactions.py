"""Transactions, conflict serializability and two-phase locking.

This is the substrate for the Table I transaction-management row
[29]-[31]: Bittner & Groppe schedule transactions into parallel execution
slots so that conflicting transactions never overlap (avoiding 2PL
blocking); Groppe & Groppe search the schedule space with Grover.

The module provides:

* :class:`Transaction` / :class:`Schedule` — read/write models and
  interleavings;
* :func:`conflict_graph` / :func:`is_conflict_serializable` — the classic
  precedence-graph test;
* :class:`LockManager` — a strict-2PL simulator that measures blocking;
* :func:`simulate_slot_schedule` — executes a slot assignment and reports
  makespan + blocking, the objective of the QUBO mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import networkx as nx

from repro.exceptions import ReproError


@dataclass(frozen=True)
class Operation:
    """One read or write of a data item by a transaction."""

    txn: str
    kind: str  # "r" or "w"
    item: str

    def __post_init__(self):
        if self.kind not in ("r", "w"):
            raise ReproError(f"operation kind must be 'r' or 'w', got {self.kind!r}")

    def conflicts_with(self, other: "Operation") -> bool:
        """Different transactions, same item, at least one write."""
        return (
            self.txn != other.txn
            and self.item == other.item
            and ("w" in (self.kind, other.kind))
        )

    def __repr__(self) -> str:
        return f"{self.kind}{self.txn}[{self.item}]"


@dataclass
class Transaction:
    """A named sequence of read/write operations."""

    txn_id: str
    operations: list[Operation] = field(default_factory=list)

    @classmethod
    def from_string(cls, txn_id: str, spec: str) -> "Transaction":
        """Parse a compact spec like ``"r(x) w(y) r(z)"``."""
        ops = []
        for token in spec.split():
            if len(token) < 4 or token[1] != "(" or not token.endswith(")"):
                raise ReproError(f"bad operation token {token!r}")
            ops.append(Operation(txn_id, token[0], token[2:-1]))
        return cls(txn_id, ops)

    @property
    def items(self) -> set[str]:
        return {op.item for op in self.operations}

    @property
    def write_items(self) -> set[str]:
        return {op.item for op in self.operations if op.kind == "w"}

    def conflicts_with(self, other: "Transaction") -> bool:
        """Item-level conflict: shared item with at least one write."""
        if self.txn_id == other.txn_id:
            return False
        shared = self.items & other.items
        if not shared:
            return False
        return any(
            item in self.write_items or item in other.write_items for item in shared
        )

    def duration(self) -> int:
        """Execution length in ticks (one per operation, minimum 1)."""
        return max(len(self.operations), 1)


class Schedule:
    """An interleaving of operations from several transactions."""

    def __init__(self, operations: Iterable[Operation]):
        self.operations = list(operations)

    @classmethod
    def serial(cls, transactions: Sequence[Transaction], order: "Sequence[str] | None" = None) -> "Schedule":
        """The serial schedule running transactions in the given order."""
        by_id = {t.txn_id: t for t in transactions}
        order = list(order) if order is not None else [t.txn_id for t in transactions]
        ops: list[Operation] = []
        for txn_id in order:
            ops.extend(by_id[txn_id].operations)
        return cls(ops)

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)

    @property
    def transactions(self) -> list[str]:
        seen: list[str] = []
        for op in self.operations:
            if op.txn not in seen:
                seen.append(op.txn)
        return seen


def conflict_graph(schedule: Schedule) -> nx.DiGraph:
    """Precedence graph: edge T_i -> T_j for each earlier conflicting op."""
    g = nx.DiGraph()
    g.add_nodes_from(schedule.transactions)
    ops = schedule.operations
    for i, a in enumerate(ops):
        for b in ops[i + 1 :]:
            if a.conflicts_with(b):
                g.add_edge(a.txn, b.txn)
    return g


def is_conflict_serializable(schedule: Schedule) -> bool:
    """A schedule is conflict serializable iff its precedence graph is acyclic."""
    return nx.is_directed_acyclic_graph(conflict_graph(schedule))


class LockManager:
    """Strict two-phase locking with shared/exclusive locks.

    :meth:`run` executes transactions that were released at given start
    ticks: a transaction acquires all its locks at start (conservative 2PL,
    matching the blocking model of [29]), holds them for its duration, and
    releases at commit.  A transaction that cannot acquire its locks waits;
    waiting time is the *blocking time* the QUBO scheduler minimises.
    """

    def __init__(self, transactions: Sequence[Transaction]):
        self.transactions = {t.txn_id: t for t in transactions}

    def run(self, start_ticks: Mapping[str, int], max_ticks: int = 10_000) -> "LockingReport":
        pending = sorted(self.transactions, key=lambda t: (start_ticks[t], t))
        for t in pending:
            if start_ticks[t] < 0:
                raise ReproError("start ticks must be non-negative")
        running: dict[str, int] = {}  # txn -> remaining ticks
        finished: dict[str, int] = {}  # txn -> completion tick
        waiting: dict[str, int] = {}  # txn -> accumulated blocked ticks
        locks_shared: dict[str, set[str]] = {}
        locks_exclusive: dict[str, str] = {}
        started: dict[str, int] = {}

        def can_lock(txn: Transaction) -> bool:
            for item in txn.items:
                holder = locks_exclusive.get(item)
                if holder is not None and holder != txn.txn_id:
                    return False
            for item in txn.write_items:
                sharers = locks_shared.get(item, set())
                if sharers - {txn.txn_id}:
                    return False
            return True

        def acquire(txn: Transaction) -> None:
            for item in txn.write_items:
                locks_exclusive[item] = txn.txn_id
            for item in txn.items - txn.write_items:
                locks_shared.setdefault(item, set()).add(txn.txn_id)

        def release(txn: Transaction) -> None:
            for item, holder in list(locks_exclusive.items()):
                if holder == txn.txn_id:
                    del locks_exclusive[item]
            for item, sharers in list(locks_shared.items()):
                sharers.discard(txn.txn_id)
                if not sharers:
                    del locks_shared[item]

        tick = 0
        while len(finished) < len(self.transactions):
            if tick > max_ticks:
                raise ReproError("lock simulation exceeded max_ticks (livelock?)")
            # Finish transactions completing this tick.
            for txn_id in sorted(running):
                running[txn_id] -= 1
                if running[txn_id] == 0:
                    release(self.transactions[txn_id])
                    finished[txn_id] = tick
                    del running[txn_id]
            # Admit released transactions (deterministic order).
            for txn_id in pending:
                if txn_id in finished or txn_id in running:
                    continue
                if start_ticks[txn_id] > tick:
                    continue
                txn = self.transactions[txn_id]
                if can_lock(txn):
                    acquire(txn)
                    running[txn_id] = txn.duration()
                    started[txn_id] = tick
                else:
                    waiting[txn_id] = waiting.get(txn_id, 0) + 1
            tick += 1
        return LockingReport(
            makespan=max(finished.values()) if finished else 0,
            blocking_time=sum(waiting.values()),
            waits=dict(waiting),
            start_times=started,
            completion_times=finished,
        )


@dataclass
class LockingReport:
    """Outcome of a 2PL simulation."""

    makespan: int
    blocking_time: int
    waits: dict[str, int]
    start_times: dict[str, int]
    completion_times: dict[str, int]


def simulate_slot_schedule(
    transactions: Sequence[Transaction],
    assignment: Mapping[str, int],
    slot_length: "int | None" = None,
) -> "SlotReport":
    """Evaluate a slot assignment (the Bittner-Groppe objective).

    Transactions assigned to slot ``s`` are released at tick
    ``s * slot_length``; the 2PL simulator then reports actual makespan and
    blocking.  A conflict-free assignment (no two conflicting transactions
    in the same slot) should show zero blocking when ``slot_length`` covers
    the longest transaction.
    """
    if slot_length is None:
        slot_length = max((t.duration() for t in transactions), default=1)
    start_ticks = {t.txn_id: assignment[t.txn_id] * slot_length for t in transactions}
    report = LockManager(transactions).run(start_ticks)
    conflicts_in_slot = 0
    txns = list(transactions)
    for i, a in enumerate(txns):
        for b in txns[i + 1 :]:
            if assignment[a.txn_id] == assignment[b.txn_id] and a.conflicts_with(b):
                conflicts_in_slot += 1
    return SlotReport(
        makespan=report.makespan,
        blocking_time=report.blocking_time,
        conflicting_pairs_colocated=conflicts_in_slot,
        num_slots_used=len(set(assignment.values())),
        locking=report,
    )


@dataclass
class SlotReport:
    """Outcome of evaluating a slot assignment."""

    makespan: int
    blocking_time: int
    conflicting_pairs_colocated: int
    num_slots_used: int
    locking: LockingReport
