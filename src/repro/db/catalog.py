"""Catalog: table statistics used by the cost model and generators."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.relation import Relation
from repro.exceptions import ReproError


@dataclass
class TableStats:
    """Statistics for one base table."""

    name: str
    cardinality: int
    distinct_values: dict[str, int] = field(default_factory=dict)

    def distinct(self, column: str) -> int:
        """Distinct count of ``column`` (defaults to the cardinality)."""
        return self.distinct_values.get(column, self.cardinality)


class Catalog:
    """Registry of table statistics (and optionally the data itself)."""

    def __init__(self):
        self._stats: dict[str, TableStats] = {}
        self._relations: dict[str, Relation] = {}

    def add_table(self, name: str, cardinality: int, distinct_values: "dict[str, int] | None" = None) -> TableStats:
        """Register statistics for a table."""
        if cardinality < 0:
            raise ReproError("cardinality must be non-negative")
        stats = TableStats(name, cardinality, dict(distinct_values or {}))
        self._stats[name] = stats
        return stats

    def add_relation(self, relation: Relation) -> TableStats:
        """Register a concrete relation; statistics are derived from data."""
        self._relations[relation.name] = relation
        distinct = {
            c: len({row[i] for row in relation.rows})
            for i, c in enumerate(relation.columns)
        }
        return self.add_table(relation.name, relation.cardinality, distinct)

    def stats(self, name: str) -> TableStats:
        if name not in self._stats:
            raise ReproError(f"unknown table {name!r}")
        return self._stats[name]

    def relation(self, name: str) -> Relation:
        if name not in self._relations:
            raise ReproError(f"no data registered for table {name!r}")
        return self._relations[name]

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    @property
    def table_names(self) -> list[str]:
        return sorted(self._stats)

    def equijoin_selectivity(self, left: str, left_col: str, right: str, right_col: str) -> float:
        """Textbook equi-join selectivity ``1 / max(V(L,a), V(R,b))``."""
        vl = self.stats(left).distinct(left_col)
        vr = self.stats(right).distinct(right_col)
        return 1.0 / max(vl, vr, 1)
