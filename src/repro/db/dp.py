"""Classical join-ordering optimizers: the baselines of Table I rows [23]-[27].

* :func:`dp_optimal_bushy` — dynamic programming over connected subsets
  (exact optimum over bushy trees, no cross products when avoidable).
* :func:`dp_optimal_leftdeep` — Selinger-style DP restricted to left-deep
  trees.
* :func:`greedy_operator_ordering` — GOO: repeatedly join the cheapest pair.
* :func:`random_order` — the sanity-check baseline.
"""

from __future__ import annotations

from itertools import combinations

from repro.db.cost import CostModel
from repro.db.plans import JoinTree, leftdeep_tree_from_order
from repro.db.query import JoinGraph
from repro.exceptions import ReproError
from repro.utils.rngtools import ensure_rng


def _check_size(graph: JoinGraph, limit: int, algo: str) -> None:
    if graph.num_relations > limit:
        raise ReproError(
            f"{algo} limited to {limit} relations, query has {graph.num_relations}"
        )


def dp_optimal_bushy(graph: JoinGraph, cost_model: "CostModel | None" = None, max_relations: int = 14) -> tuple[JoinTree, float]:
    """Exact bushy optimum via DP over subsets.

    Cross products are allowed only when the join graph is disconnected
    (matching the standard "no needless cross products" rule).
    """
    _check_size(graph, max_relations, "dp_optimal_bushy")
    cm = cost_model or CostModel(graph)
    rels = graph.relations
    allow_cross = not graph.is_connected()
    best: dict[frozenset, tuple[float, JoinTree]] = {}
    for r in rels:
        best[frozenset([r])] = (0.0, JoinTree.leaf(r))
    for size in range(2, len(rels) + 1):
        for subset in combinations(rels, size):
            key = frozenset(subset)
            best_entry = None
            # Enumerate proper subset splits (each unordered split once).
            members = sorted(key)
            anchor = members[0]
            rest = members[1:]
            for mask in range(1 << len(rest)):
                left_set = frozenset([anchor] + [r for i, r in enumerate(rest) if mask >> i & 1])
                right_set = key - left_set
                if not right_set:
                    continue
                if left_set not in best or right_set not in best:
                    continue
                if not allow_cross and not graph.connects(left_set, right_set):
                    continue
                cost = (
                    best[left_set][0]
                    + best[right_set][0]
                    + cm.set_cardinality(key)
                )
                if best_entry is None or cost < best_entry[0]:
                    best_entry = (cost, JoinTree.join(best[left_set][1], best[right_set][1]))
            if best_entry is not None:
                best[key] = best_entry
    full = frozenset(rels)
    if full not in best:
        raise ReproError("DP failed: join graph admits no cross-product-free plan")
    cost, tree = best[full]
    return tree, cost


def dp_optimal_leftdeep(graph: JoinGraph, cost_model: "CostModel | None" = None, max_relations: int = 16, avoid_cross: bool = True) -> tuple[JoinTree, float]:
    """Exact optimum over left-deep trees (Selinger DP)."""
    _check_size(graph, max_relations, "dp_optimal_leftdeep")
    cm = cost_model or CostModel(graph)
    rels = graph.relations
    allow_cross = not avoid_cross or not graph.is_connected()
    best: dict[frozenset, tuple[float, list[str]]] = {}
    for r in rels:
        best[frozenset([r])] = (0.0, [r])
    for size in range(2, len(rels) + 1):
        for subset in combinations(rels, size):
            key = frozenset(subset)
            best_entry = None
            for last in subset:
                prefix = key - {last}
                if prefix not in best:
                    continue
                if not allow_cross and size > 1 and not graph.connects(prefix, [last]):
                    continue
                cost = best[prefix][0] + cm.set_cardinality(key)
                if best_entry is None or cost < best_entry[0]:
                    best_entry = (cost, best[prefix][1] + [last])
            if best_entry is not None:
                best[key] = best_entry
    full = frozenset(rels)
    if full not in best:
        if avoid_cross:
            # Retry allowing cross products (disconnected or pathological).
            return dp_optimal_leftdeep(graph, cm, max_relations, avoid_cross=False)
        raise ReproError("left-deep DP found no complete plan")
    cost, order = best[full]
    return leftdeep_tree_from_order(order), cost


def greedy_operator_ordering(graph: JoinGraph, cost_model: "CostModel | None" = None) -> tuple[JoinTree, float]:
    """GOO: repeatedly merge the pair of subtrees with the smallest result."""
    cm = cost_model or CostModel(graph)
    forest = [JoinTree.leaf(r) for r in graph.relations]
    if not forest:
        raise ReproError("empty join graph")
    total = 0.0
    while len(forest) > 1:
        best_pair = None
        best_card = None
        for i in range(len(forest)):
            for j in range(i + 1, len(forest)):
                li, lj = forest[i], forest[j]
                connected = graph.connects(li.relations(), lj.relations())
                card = cm.set_cardinality(li.relations() | lj.relations())
                # Prefer connected pairs; among them pick the smallest result.
                rank = (0 if connected else 1, card)
                if best_pair is None or rank < best_card:
                    best_pair = (i, j)
                    best_card = rank
        i, j = best_pair
        joined = JoinTree.join(forest[i], forest[j])
        total += cm.set_cardinality(joined.relations())
        forest = [t for k, t in enumerate(forest) if k not in (i, j)] + [joined]
    return forest[0], total


def random_order(graph: JoinGraph, rng=None, cost_model: "CostModel | None" = None) -> tuple[JoinTree, float]:
    """A uniformly random left-deep order (the weakest baseline)."""
    rng = ensure_rng(rng)
    cm = cost_model or CostModel(graph)
    order = list(graph.relations)
    rng.shuffle(order)
    tree = leftdeep_tree_from_order(order)
    return tree, cm.cost(tree)
