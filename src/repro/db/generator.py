"""Synthetic query-graph generators.

The surveyed join-ordering papers evaluate on the classic topology families
(chain, star, cycle, clique) with random cardinalities and selectivities
[55]-[57]; these generators reproduce that workload space deterministically
given a seed.
"""

from __future__ import annotations

import numpy as np

from repro.db.query import JoinGraph
from repro.exceptions import ReproError
from repro.utils.rngtools import ensure_rng


def _relation_names(n: int) -> list[str]:
    return [f"R{i}" for i in range(n)]


def _random_card(rng, lo: float = 10.0, hi: float = 10_000.0) -> float:
    """Log-uniform cardinality in [lo, hi]."""
    return float(round(10 ** rng.uniform(np.log10(lo), np.log10(hi))))


def _random_sel(rng, lo: float = 1e-3, hi: float = 0.5) -> float:
    """Log-uniform selectivity in [lo, hi]."""
    return float(10 ** rng.uniform(np.log10(lo), np.log10(hi)))


def chain_query(num_relations: int, rng=None) -> JoinGraph:
    """R0 - R1 - ... - R(n-1)."""
    rng = ensure_rng(rng)
    if num_relations < 2:
        raise ReproError("need at least two relations")
    jg = JoinGraph()
    names = _relation_names(num_relations)
    for name in names:
        jg.add_relation(name, _random_card(rng))
    for a, b in zip(names, names[1:]):
        jg.add_join(a, b, _random_sel(rng))
    return jg


def star_query(num_relations: int, rng=None) -> JoinGraph:
    """Fact table R0 joined to n-1 dimension tables (the DW pattern)."""
    rng = ensure_rng(rng)
    if num_relations < 2:
        raise ReproError("need at least two relations")
    jg = JoinGraph()
    names = _relation_names(num_relations)
    jg.add_relation(names[0], _random_card(rng, lo=1_000.0, hi=100_000.0))
    for name in names[1:]:
        jg.add_relation(name, _random_card(rng, lo=10.0, hi=1_000.0))
        jg.add_join(names[0], name, _random_sel(rng))
    return jg


def cycle_query(num_relations: int, rng=None) -> JoinGraph:
    """A chain closed into a ring."""
    rng = ensure_rng(rng)
    if num_relations < 3:
        raise ReproError("a cycle needs at least three relations")
    jg = chain_query(num_relations, rng)
    names = _relation_names(num_relations)
    jg.add_join(names[-1], names[0], _random_sel(rng))
    return jg


def clique_query(num_relations: int, rng=None) -> JoinGraph:
    """Every pair of relations joined (the hardest topology)."""
    rng = ensure_rng(rng)
    if num_relations < 2:
        raise ReproError("need at least two relations")
    jg = JoinGraph()
    names = _relation_names(num_relations)
    for name in names:
        jg.add_relation(name, _random_card(rng))
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            jg.add_join(a, b, _random_sel(rng))
    return jg


_TOPOLOGIES = {
    "chain": chain_query,
    "star": star_query,
    "cycle": cycle_query,
    "clique": clique_query,
}


def random_query(num_relations: int, topology: str = "chain", rng=None) -> JoinGraph:
    """Dispatch by topology name (``chain``/``star``/``cycle``/``clique``)."""
    if topology not in _TOPOLOGIES:
        raise ReproError(f"unknown topology {topology!r}; choose from {sorted(_TOPOLOGIES)}")
    return _TOPOLOGIES[topology](num_relations, rng=rng)
