"""Cardinality estimation and the C_out cost model.

``C_out`` — the sum of the cardinalities of all intermediate join results —
is the cost function used throughout the join-ordering literature the paper
surveys ([55]-[57], [23]-[26]).
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Iterable

from repro.db.plans import JoinTree
from repro.db.query import JoinGraph
from repro.exceptions import ReproError


class CostModel:
    """Independence-assumption cardinality estimates over a join graph."""

    def __init__(self, graph: JoinGraph):
        self.graph = graph
        self._card_cache: dict[frozenset, float] = {}

    def set_cardinality(self, relations: Iterable[str]) -> float:
        """Estimated cardinality of joining the given relation set.

        ``|S| = prod card(r) * prod_{edges inside S} sel(e)`` — every
        applicable predicate is applied once.
        """
        key = frozenset(relations)
        if not key:
            raise ReproError("cardinality of the empty set is undefined")
        if key in self._card_cache:
            return self._card_cache[key]
        card = 1.0
        rels = sorted(key)
        for r in rels:
            card *= self.graph.cardinality(r)
        for i, u in enumerate(rels):
            for v in rels[i + 1 :]:
                if self.graph.has_join(u, v):
                    card *= self.graph.selectivity(u, v)
        self._card_cache[key] = card
        return card

    def tree_cardinality(self, tree: JoinTree) -> float:
        return self.set_cardinality(tree.relations())

    def cost(self, tree: JoinTree) -> float:
        """C_out: total cardinality of every intermediate (inner) node."""
        total = 0.0
        for node in tree.inner_nodes():
            total += self.set_cardinality(node.relations())
        return total

    def log_cost(self, tree: JoinTree) -> float:
        """Sum of log10 intermediate cardinalities (the QUBO surrogate)."""
        total = 0.0
        for node in tree.inner_nodes():
            total += math.log10(max(self.set_cardinality(node.relations()), 1.0))
        return total

    def cost_of_order(self, order: Iterable[str]) -> float:
        """C_out of the left-deep tree implied by a relation order."""
        from repro.db.plans import leftdeep_tree_from_order

        return self.cost(leftdeep_tree_from_order(list(order)))
