"""Join graphs: the query representation all optimizers work over.

A :class:`JoinGraph` has one node per base relation (with its cardinality)
and one edge per join predicate (with its selectivity) — the standard input
of the join-ordering literature [55]-[57] and of the QUBO mappings
[23]-[26].
"""

from __future__ import annotations

from typing import Iterable, Mapping

import networkx as nx

from repro.exceptions import ReproError


class JoinGraph:
    """Relations, cardinalities and join selectivities."""

    def __init__(self):
        self._graph = nx.Graph()

    @classmethod
    def build(
        cls,
        cardinalities: Mapping[str, float],
        selectivities: Mapping[tuple[str, str], float],
    ) -> "JoinGraph":
        """Construct from ``{rel: card}`` and ``{(rel, rel): selectivity}``."""
        jg = cls()
        for name, card in cardinalities.items():
            jg.add_relation(name, card)
        for (u, v), sel in selectivities.items():
            jg.add_join(u, v, sel)
        return jg

    def add_relation(self, name: str, cardinality: float) -> "JoinGraph":
        if cardinality <= 0:
            raise ReproError(f"relation {name!r} needs positive cardinality")
        self._graph.add_node(name, cardinality=float(cardinality))
        return self

    def add_join(self, u: str, v: str, selectivity: float) -> "JoinGraph":
        if u == v:
            raise ReproError("self-joins need distinct aliases")
        for r in (u, v):
            if r not in self._graph:
                raise ReproError(f"unknown relation {r!r}")
        if not 0.0 < selectivity <= 1.0:
            raise ReproError(f"selectivity must be in (0, 1], got {selectivity}")
        self._graph.add_edge(u, v, selectivity=float(selectivity))
        return self

    # -- accessors ---------------------------------------------------------------

    @property
    def relations(self) -> list[str]:
        """Relation names in sorted order (stable across runs)."""
        return sorted(self._graph.nodes)

    @property
    def num_relations(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def edges(self) -> list[tuple[str, str]]:
        """Join edges with endpoints in sorted order."""
        return sorted((min(u, v), max(u, v)) for u, v in self._graph.edges)

    def cardinality(self, name: str) -> float:
        try:
            return self._graph.nodes[name]["cardinality"]
        except KeyError:
            raise ReproError(f"unknown relation {name!r}") from None

    def selectivity(self, u: str, v: str) -> float:
        """Selectivity of the edge (1.0 when no predicate connects them)."""
        data = self._graph.get_edge_data(u, v)
        return data["selectivity"] if data else 1.0

    def has_join(self, u: str, v: str) -> bool:
        return self._graph.has_edge(u, v)

    def neighbors(self, name: str) -> list[str]:
        return sorted(self._graph.neighbors(name))

    def is_connected(self) -> bool:
        return nx.is_connected(self._graph) if self.num_relations else True

    def is_acyclic(self) -> bool:
        """True when the join graph is a forest (chains, stars, trees)."""
        return nx.is_forest(self._graph)

    def connects(self, left: Iterable[str], right: Iterable[str]) -> bool:
        """Whether any join predicate links the two relation sets."""
        right_set = set(right)
        return any(
            self._graph.has_edge(u, v) for u in left for v in right_set
        )

    def nx_graph(self) -> nx.Graph:
        """A copy of the underlying networkx graph."""
        return self._graph.copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JoinGraph({self.num_relations} relations, {self._graph.number_of_edges()} joins)"
