"""Join trees: the plan representation for join ordering.

A :class:`JoinTree` is either a leaf (one base relation) or an inner node
joining two subtrees.  Left-deep trees (every right child is a leaf) are the
search space of Selinger-style optimizers and of the left-deep QUBO
mappings [23], [24]; general bushy trees are the space of [25], [26].
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.exceptions import ReproError


class JoinTree:
    """Immutable binary join tree."""

    __slots__ = ("left", "right", "relation", "_relations")

    def __init__(
        self,
        relation: "str | None" = None,
        left: "JoinTree | None" = None,
        right: "JoinTree | None" = None,
    ):
        if relation is not None:
            if left is not None or right is not None:
                raise ReproError("a leaf cannot have children")
            self.relation = relation
            self.left = None
            self.right = None
            self._relations = frozenset([relation])
        else:
            if left is None or right is None:
                raise ReproError("an inner node needs two children")
            overlap = left._relations & right._relations
            if overlap:
                raise ReproError(f"children share relations: {sorted(overlap)}")
            self.relation = None
            self.left = left
            self.right = right
            self._relations = left._relations | right._relations

    # -- constructors -------------------------------------------------------------

    @classmethod
    def leaf(cls, relation: str) -> "JoinTree":
        return cls(relation=relation)

    @classmethod
    def join(cls, left: "JoinTree", right: "JoinTree") -> "JoinTree":
        return cls(left=left, right=right)

    # -- structure ----------------------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        return self.relation is not None

    def relations(self) -> frozenset:
        """The set of base relations under this node."""
        return self._relations

    def num_relations(self) -> int:
        return len(self._relations)

    def leaves_in_order(self) -> list[str]:
        """Base relations left-to-right."""
        if self.is_leaf:
            return [self.relation]
        return self.left.leaves_in_order() + self.right.leaves_in_order()

    def inner_nodes(self) -> Iterator["JoinTree"]:
        """Every non-leaf node (postorder)."""
        if self.is_leaf:
            return
        yield from self.left.inner_nodes()
        yield from self.right.inner_nodes()
        yield self

    def depth(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth(), self.right.depth())

    def is_left_deep(self) -> bool:
        """True when every right child is a leaf."""
        if self.is_leaf:
            return True
        return self.right.is_leaf and self.left.is_left_deep()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JoinTree):
            return NotImplemented
        if self.is_leaf != other.is_leaf:
            return False
        if self.is_leaf:
            return self.relation == other.relation
        return self.left == other.left and self.right == other.right

    def __hash__(self) -> int:
        if self.is_leaf:
            return hash(("leaf", self.relation))
        return hash(("join", self.left, self.right))

    def __repr__(self) -> str:
        if self.is_leaf:
            return self.relation
        return f"({self.left!r} |X| {self.right!r})"


def leftdeep_tree_from_order(order: Sequence[str]) -> JoinTree:
    """Build the left-deep tree joining relations in the given order."""
    if not order:
        raise ReproError("cannot build a join tree over no relations")
    if len(set(order)) != len(order):
        raise ReproError("duplicate relations in join order")
    tree = JoinTree.leaf(order[0])
    for rel in order[1:]:
        tree = JoinTree.join(tree, JoinTree.leaf(rel))
    return tree


def all_leftdeep_orders(relations: Sequence[str]) -> Iterator[tuple[str, ...]]:
    """Every permutation of the relations (use only for small n)."""
    import itertools

    return itertools.permutations(relations)


def tree_from_edge_sequence(edges: Sequence[tuple[str, str]], relations: Sequence[str]) -> JoinTree:
    """Build a bushy tree by contracting join-graph edges in sequence.

    Each edge joins the two current subtrees containing its endpoints (the
    encoding used by the bushy QUBO of [25], [26]).  An edge whose endpoints
    already share a subtree is skipped (it is a redundant predicate).
    """
    forest: dict[str, JoinTree] = {r: JoinTree.leaf(r) for r in relations}
    owner: dict[str, str] = {r: r for r in relations}

    def find(r: str) -> str:
        while owner[r] != r:
            owner[r] = owner[owner[r]]
            r = owner[r]
        return r

    for u, v in edges:
        ru, rv = find(u), find(v)
        if ru == rv:
            continue
        joined = JoinTree.join(forest[ru], forest[rv])
        owner[rv] = ru
        forest[ru] = joined
        del forest[rv]
    roots = {find(r) for r in relations}
    if len(roots) != 1:
        raise ReproError(
            f"edge sequence leaves {len(roots)} disconnected subtrees; not a complete plan"
        )
    return forest[find(relations[0])]
