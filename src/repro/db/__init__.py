"""Classical relational database substrate.

The quantum-DB mappings of Table I all presuppose a classical database
stack: relations and operators (:mod:`.relation`), statistics
(:mod:`.catalog`), join graphs and selectivities (:mod:`.query`), a cost
model (:mod:`.cost`), join trees and classical optimizers (:mod:`.plans`,
:mod:`.dp`), workload generators (:mod:`.generator`), a small SQL dialect
(:mod:`.sql`), and transaction/2PL machinery (:mod:`.transactions`).
"""

from repro.db.catalog import Catalog, TableStats
from repro.db.cost import CostModel
from repro.db.dp import dp_optimal_bushy, dp_optimal_leftdeep, greedy_operator_ordering
from repro.db.generator import (
    chain_query,
    clique_query,
    cycle_query,
    random_query,
    star_query,
)
from repro.db.plans import JoinTree, leftdeep_tree_from_order
from repro.db.query import JoinGraph
from repro.db.relation import Relation
from repro.db.sql import parse_sql
from repro.db.transactions import (
    LockManager,
    Schedule,
    Transaction,
    conflict_graph,
    is_conflict_serializable,
    simulate_slot_schedule,
)

__all__ = [
    "Catalog",
    "TableStats",
    "CostModel",
    "dp_optimal_bushy",
    "dp_optimal_leftdeep",
    "greedy_operator_ordering",
    "chain_query",
    "clique_query",
    "cycle_query",
    "random_query",
    "star_query",
    "JoinTree",
    "leftdeep_tree_from_order",
    "JoinGraph",
    "Relation",
    "parse_sql",
    "LockManager",
    "Schedule",
    "Transaction",
    "conflict_graph",
    "is_conflict_serializable",
    "simulate_slot_schedule",
]
