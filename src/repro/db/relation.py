"""In-memory relations and physical operators.

A :class:`Relation` is a named, schema-tagged bag of tuples with the
classical operators the paper's quantum counterparts are compared against:
selection, projection, hash join, nested-loop join, and the set operations
(union / intersection / difference, Sec. III-A [45]-[50]).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.exceptions import ReproError

Row = tuple


class Relation:
    """A named relation with positional columns.

    Rows are tuples aligned with ``columns``.  Set semantics are applied on
    demand by the set operations; the base container is a bag.
    """

    def __init__(self, name: str, columns: Sequence[str], rows: "Iterable[Row] | None" = None):
        if not columns:
            raise ReproError("a relation needs at least one column")
        if len(set(columns)) != len(columns):
            raise ReproError(f"duplicate column names in {list(columns)}")
        self.name = name
        self.columns = tuple(columns)
        self.rows: list[Row] = []
        for row in rows or []:
            self.insert(row)

    # -- basics ---------------------------------------------------------------

    @property
    def cardinality(self) -> int:
        return len(self.rows)

    def column_index(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise ReproError(f"relation {self.name!r} has no column {column!r}") from None

    def insert(self, row: Row) -> None:
        """Append one tuple (arity-checked)."""
        row = tuple(row)
        if len(row) != len(self.columns):
            raise ReproError(
                f"row arity {len(row)} does not match schema arity {len(self.columns)}"
            )
        self.rows.append(row)

    def delete(self, predicate: Callable[[Row], bool]) -> int:
        """Remove rows matching ``predicate``; returns the removed count."""
        before = len(self.rows)
        self.rows = [r for r in self.rows if not predicate(r)]
        return before - len(self.rows)

    def update(self, predicate: Callable[[Row], bool], setter: Callable[[Row], Row]) -> int:
        """Rewrite rows matching ``predicate``; returns the touched count."""
        touched = 0
        new_rows = []
        for r in self.rows:
            if predicate(r):
                new_row = tuple(setter(r))
                if len(new_row) != len(self.columns):
                    raise ReproError("updated row arity mismatch")
                new_rows.append(new_row)
                touched += 1
            else:
                new_rows.append(r)
        self.rows = new_rows
        return touched

    def distinct(self) -> "Relation":
        seen = set()
        out = []
        for r in self.rows:
            if r not in seen:
                seen.add(r)
                out.append(r)
        return Relation(self.name, self.columns, out)

    # -- operators --------------------------------------------------------------

    def select(self, predicate: Callable[[Row], bool], name: "str | None" = None) -> "Relation":
        """Sigma: keep rows satisfying ``predicate``."""
        return Relation(name or f"sel({self.name})", self.columns, [r for r in self.rows if predicate(r)])

    def select_eq(self, column: str, value) -> "Relation":
        """Selection on a single equality, the common case."""
        i = self.column_index(column)
        return self.select(lambda r: r[i] == value, name=f"{self.name}[{column}={value!r}]")

    def project(self, columns: Sequence[str], name: "str | None" = None) -> "Relation":
        """Pi: keep (and reorder to) the named columns."""
        idx = [self.column_index(c) for c in columns]
        rows = [tuple(r[i] for i in idx) for r in self.rows]
        return Relation(name or f"proj({self.name})", columns, rows)

    def hash_join(self, other: "Relation", left_col: str, right_col: str) -> "Relation":
        """Equi-join via a build/probe hash table (build on the smaller side)."""
        if self.cardinality <= other.cardinality:
            build, probe = self, other
            build_col, probe_col = left_col, right_col
            swapped = False
        else:
            build, probe = other, self
            build_col, probe_col = right_col, left_col
            swapped = True
        bi = build.column_index(build_col)
        pi = probe.column_index(probe_col)
        table: dict = {}
        for row in build.rows:
            table.setdefault(row[bi], []).append(row)
        out_rows = []
        for row in probe.rows:
            for match in table.get(row[pi], ()):  # noqa: B905
                combined = (match + row) if not swapped else (row + match)
                out_rows.append(combined)
        left, right = (self, other)
        columns = [f"{left.name}.{c}" if "." not in c else c for c in left.columns]
        columns += [f"{right.name}.{c}" if "." not in c else c for c in right.columns]
        return Relation(f"({self.name}|X|{other.name})", columns, out_rows)

    def nested_loop_join(self, other: "Relation", predicate: Callable[[Row, Row], bool]) -> "Relation":
        """Theta-join by nested loops (arbitrary predicate)."""
        out_rows = [l + r for l in self.rows for r in other.rows if predicate(l, r)]
        columns = [f"{self.name}.{c}" if "." not in c else c for c in self.columns]
        columns += [f"{other.name}.{c}" if "." not in c else c for c in other.columns]
        return Relation(f"({self.name}NLJ{other.name})", columns, out_rows)

    def cross(self, other: "Relation") -> "Relation":
        """Cartesian product."""
        return self.nested_loop_join(other, lambda l, r: True)

    # -- set operations (schema-compatible inputs) --------------------------------

    def _check_compatible(self, other: "Relation") -> None:
        if len(self.columns) != len(other.columns):
            raise ReproError(
                f"set operation on incompatible arities {len(self.columns)} vs {len(other.columns)}"
            )

    def union(self, other: "Relation") -> "Relation":
        """Set union (duplicates removed)."""
        self._check_compatible(other)
        seen = set()
        rows = []
        for r in self.rows + other.rows:
            if r not in seen:
                seen.add(r)
                rows.append(r)
        return Relation(f"({self.name}+{other.name})", self.columns, rows)

    def intersect(self, other: "Relation") -> "Relation":
        """Set intersection."""
        self._check_compatible(other)
        other_set = set(other.rows)
        seen = set()
        rows = []
        for r in self.rows:
            if r in other_set and r not in seen:
                seen.add(r)
                rows.append(r)
        return Relation(f"({self.name}&{other.name})", self.columns, rows)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference ``self - other``."""
        self._check_compatible(other)
        other_set = set(other.rows)
        seen = set()
        rows = []
        for r in self.rows:
            if r not in other_set and r not in seen:
                seen.add(r)
                rows.append(r)
        return Relation(f"({self.name}-{other.name})", self.columns, rows)

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self.name!r}, {list(self.columns)}, {len(self.rows)} rows)"
