"""Classical simulated annealing for QUBO models.

The sampler is vectorised across reads: every sweep updates all reads'
candidate flips for one variable at a time, so the inner loop is numpy
work rather than Python-level per-spin iteration.
"""

from __future__ import annotations

import numpy as np

from repro.annealing.schedule import geometric_beta_schedule, model_beta_range
from repro.qubo.model import QuboModel
from repro.qubo.sampleset import SampleSet
from repro.utils.rngtools import ensure_rng


class SimulatedAnnealingSolver:
    """Metropolis single-flip simulated annealing.

    Args:
        num_reads: Independent annealing runs (returned as separate samples).
        num_sweeps: Full variable sweeps per read.
        beta_schedule: Optional explicit inverse-temperature ladder; defaults
            to a geometric ramp over the per-variable field range of the
            problem (dwave-neal style), which handles the heterogeneous
            scales of penalty- and chain-augmented QUBOs.
        quench: Finish each read with a greedy single-flip descent.
    """

    def __init__(
        self,
        num_reads: int = 32,
        num_sweeps: int = 256,
        beta_schedule: "np.ndarray | None" = None,
        quench: bool = True,
    ):
        self.num_reads = num_reads
        self.num_sweeps = num_sweeps
        self.beta_schedule = beta_schedule
        self.quench = quench

    def solve(self, model: QuboModel, rng=None, blocks: "list[list[int]] | None" = None) -> SampleSet:
        """Anneal ``model``.

        ``blocks`` optionally lists variable groups proposed as collective
        flips once per sweep (in addition to single flips).  The annealer
        device passes its embedding chains here: collective chain flips
        model the multi-spin tunnelling of the physical machine, without
        which classical dynamics freeze at chain-flip barriers.

        Without an explicit ``beta_schedule`` the reads are split across a
        *portfolio* of two schedules — one scaled to the coefficient range
        (good mixing on small, homogeneous problems) and one to the
        per-variable field range (good freezing on heterogeneous
        penalty/chain problems) — and the results merged.
        """
        rng = ensure_rng(rng)
        if self.beta_schedule is None and self.num_reads >= 2:
            return self._solve_portfolio(model, rng, blocks)
        return self._solve_single(model, rng, blocks, self.beta_schedule, self.num_reads)

    def _solve_portfolio(self, model: QuboModel, rng, blocks) -> SampleSet:
        from repro.annealing.schedule import beta_range

        half = self.num_reads // 2
        lo_f, hi_f = model_beta_range(model)
        field_sched = geometric_beta_schedule(lo_f, hi_f, self.num_sweeps)
        lo_c, hi_c = beta_range(model.max_abs_coefficient())
        coeff_sched = geometric_beta_schedule(lo_c, hi_c, self.num_sweeps)
        first = self._solve_single(model, rng, blocks, coeff_sched, self.num_reads - half)
        second = self._solve_single(model, rng, blocks, field_sched, half)
        info = {**first.info, **second.info}
        info["schedule_portfolio"] = {
            "coeff_reads": self.num_reads - half,
            "field_reads": half,
        }
        return SampleSet(list(first) + list(second), info=info)

    def _solve_single(self, model: QuboModel, rng, blocks, beta_schedule, num_reads) -> SampleSet:
        n = model.num_variables
        a, S = model.symmetric_couplings()
        betas = beta_schedule
        if betas is None:
            lo, hi = model_beta_range(model)
            betas = geometric_beta_schedule(lo, hi, self.num_sweeps)
        elif len(betas) != self.num_sweeps:
            betas = np.interp(
                np.linspace(0, 1, self.num_sweeps), np.linspace(0, 1, len(betas)), betas
            )
        block_data = []
        for block in blocks or []:
            idx = np.array(sorted(block), dtype=int)
            block_data.append((idx, S[np.ix_(idx, idx)]))

        reads = num_reads
        X = rng.integers(0, 2, size=(reads, n))
        fields = X @ S  # (reads, n): sum_j S_ij x_j per read
        for beta in betas:
            order = rng.permutation(n)
            # One uniform draw per (read, variable) for the whole sweep.
            uniforms = rng.random((reads, n))
            for i in order:
                delta = (1 - 2 * X[:, i]) * (a[i] + fields[:, i])
                accept = (delta <= 0) | (uniforms[:, i] < np.exp(-beta * np.clip(delta, 0, 700)))
                if not accept.any():
                    continue
                signs = (1 - 2 * X[accept, i]).astype(float)
                X[accept, i] ^= 1
                fields[accept] += np.outer(signs, S[i])
            for idx, S_bb in block_data:
                # Collective flip of the whole block: with d_i = 1 - 2 x_i,
                # dE = sum_i d_i (a_i + field_i) + sum_{i<j} S_ij d_i d_j
                # (the second term corrects the double-counted intra-block
                # couplings already present in the fields).
                D = 1.0 - 2.0 * X[:, idx]
                cross = 0.5 * np.einsum("ri,ij,rj->r", D, S_bb, D)
                delta = (D * (a[idx] + fields[:, idx])).sum(axis=1) + cross
                u = rng.random(reads)
                accept = (delta <= 0) | (u < np.exp(-beta * np.clip(delta, 0, 700)))
                if not accept.any():
                    continue
                Da = D[accept]
                rows = np.nonzero(accept)[0]
                X[np.ix_(rows, idx)] ^= 1
                fields[rows] += Da @ S[idx]
        if self.quench:
            from repro.annealing.sqa import _greedy_quench

            X, energies = _greedy_quench(model, X)
        else:
            energies = model.energies(X)
        return SampleSet.from_arrays(
            X,
            energies,
            info={"solver": "simulated_annealing", "reads": self.num_reads, "sweeps": self.num_sweeps},
        )
