"""Minor embedding of logical QUBOs onto hardware graphs.

This reproduces the "physical mapping" step of Trummer & Koch [20]: each
logical variable becomes a *chain* of physical qubits held together by a
strong ferromagnetic coupling, placed so that every logical interaction has
at least one physical coupler between the two chains.

The embedding heuristic is a compact variant of Cai-Macready-Roy greedy
chain growth: logical nodes are placed in decreasing-degree order; each new
node claims a free physical node and grows a chain along shortest paths to
touch every already-placed neighbour chain.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import networkx as nx
import numpy as np

from repro.exceptions import EmbeddingError
from repro.qubo.model import QuboModel
from repro.qubo.sampleset import Sample, SampleSet
from repro.utils.rngtools import ensure_rng

Embedding = dict[int, list[int]]


def find_embedding(
    source: nx.Graph,
    target: nx.Graph,
    rng=None,
    tries: int = 16,
) -> Embedding:
    """Find chains of ``target`` nodes realising ``source`` as a minor.

    Returns ``{source_node: [target_nodes...]}``.  Raises
    :class:`~repro.exceptions.EmbeddingError` after ``tries`` failed
    randomised attempts.
    """
    rng = ensure_rng(rng)
    if source.number_of_nodes() == 0:
        return {}
    if source.number_of_nodes() > target.number_of_nodes():
        raise EmbeddingError("source graph larger than target graph")
    for _ in range(tries):
        embedding = _try_embed(source, target, rng)
        if embedding is not None:
            return embedding
    clique = _chimera_clique_fallback(source, target)
    if clique is not None:
        return clique
    raise EmbeddingError(
        f"no embedding of {source.number_of_nodes()}-node source into "
        f"{target.number_of_nodes()}-node target found in {tries} tries"
    )


def _chimera_clique_fallback(source: nx.Graph, target: nx.Graph) -> "Embedding | None":
    """Dense sources on Chimera targets: use the deterministic clique embedding.

    The clique embedding couples *every* pair of chains, so it hosts any
    source graph up to ``t * m`` nodes regardless of density — exactly how
    production annealer toolchains handle near-clique problems.
    """
    from repro.annealing.chimera import chimera_clique_embedding, chimera_shape

    shape = chimera_shape(target)
    if shape is None:
        return None
    m, n, t = shape
    if m != n or source.number_of_nodes() > t * m:
        return None
    chains = chimera_clique_embedding(m, t, source.number_of_nodes())
    nodes = sorted(source.nodes)
    return {v: chains[i] for i, v in enumerate(nodes)}


def _try_embed(source: nx.Graph, target: nx.Graph, rng) -> "Embedding | None":
    order = sorted(source.nodes, key=lambda v: source.degree(v), reverse=True)
    # Break degree ties randomly so retries explore different placements.
    order = sorted(order, key=lambda v: (-source.degree(v), rng.random()))
    used: set[int] = set()
    embedding: Embedding = {}
    target_nodes = list(target.nodes)
    for v in order:
        placed_neighbors = [u for u in source.neighbors(v) if u in embedding]
        if not placed_neighbors:
            candidates = [t for t in target_nodes if t not in used]
            if not candidates:
                return None
            seed = candidates[int(rng.integers(0, len(candidates)))]
            embedding[v] = [seed]
            used.add(seed)
            continue
        chain = _grow_chain(target, used, embedding, placed_neighbors, rng)
        if chain is None:
            return None
        embedding[v] = chain
        used.update(chain)
    return embedding


def _grow_chain(target, used, embedding, placed_neighbors, rng) -> "list[int] | None":
    """Grow a chain of free nodes adjacent to every placed neighbour chain."""
    free = [t for t in target.nodes if t not in used]
    if not free:
        return None
    # BFS from the frontier of each neighbour chain through free nodes,
    # recording the parent pointers; then pick a meeting node reachable from
    # all neighbours and assemble the union of paths.
    reach: dict[int, dict[int, int]] = {}
    for u in placed_neighbors:
        dist: dict[int, int] = {}
        parent: dict[int, int] = {}
        frontier = []
        for t in embedding[u]:
            for nb in target.neighbors(t):
                if nb not in used and nb not in dist:
                    dist[nb] = 1
                    parent[nb] = -1  # direct contact with the chain
                    frontier.append(nb)
        while frontier:
            nxt = []
            for node in frontier:
                for nb in target.neighbors(node):
                    if nb not in used and nb not in dist:
                        dist[nb] = dist[node] + 1
                        parent[nb] = node
                        nxt.append(nb)
            frontier = nxt
        reach[u] = parent
        if not parent:
            return None
    common = set.intersection(*(set(p.keys()) for p in reach.values()))
    if not common:
        return None
    # Cheapest meeting point: smallest total path length.
    def cost(node: int) -> int:
        total = 0
        for u in placed_neighbors:
            steps, cur = 0, node
            while cur != -1:
                steps += 1
                cur = reach[u][cur]
            total += steps
        return total

    best = min(common, key=cost)
    chain: list[int] = []
    seen: set[int] = set()
    for u in placed_neighbors:
        cur = best
        while cur != -1:
            if cur not in seen:
                seen.add(cur)
                chain.append(cur)
            cur = reach[u][cur]
    return chain


def verify_embedding(source: nx.Graph, target: nx.Graph, embedding: Embedding) -> bool:
    """Check chain connectivity, disjointness and edge coverage."""
    seen: set[int] = set()
    for v, chain in embedding.items():
        if not chain:
            return False
        if seen.intersection(chain):
            return False
        seen.update(chain)
        if len(chain) > 1 and not nx.is_connected(target.subgraph(chain)):
            return False
    for u, v in source.edges:
        if u not in embedding or v not in embedding:
            return False
        touching = any(
            target.has_edge(a, b) for a in embedding[u] for b in embedding[v]
        )
        if not touching:
            return False
    return True


def embed_qubo(
    model: QuboModel,
    embedding: Embedding,
    target: nx.Graph,
    chain_strength: "float | None" = None,
) -> QuboModel:
    """Produce the physical QUBO over hardware qubits.

    Linear coefficients are split evenly across each chain; each logical
    coupling is placed on the available physical couplers between the two
    chains (split evenly); chain integrity adds ``strength * XOR(x_a, x_b)``
    per chain edge so broken chains are penalised.
    """
    if chain_strength is None:
        chain_strength = 2.0 * model.max_abs_coefficient() + 1.0
    hw = QuboModel()
    hw.add_offset(model.offset)
    for i, chain in embedding.items():
        coeff = model.linear.get(i, 0.0)
        for q in chain:
            hw.variable(q)
            if coeff:
                hw.add_linear(q, coeff / len(chain))
    for (i, j), b in model.quadratic.items():
        couplers = [
            (a, c)
            for a in embedding[i]
            for c in embedding[j]
            if target.has_edge(a, c)
        ]
        if not couplers:
            raise EmbeddingError(f"no physical coupler for logical edge ({i}, {j})")
        for a, c in couplers:
            hw.add_quadratic(a, c, b / len(couplers))
    for i, chain in embedding.items():
        sub = nx.minimum_spanning_tree(nx.Graph(target.subgraph(chain)))
        for a, c in sub.edges:
            # XOR penalty: x_a + x_c - 2 x_a x_c.
            hw.add_linear(a, chain_strength)
            hw.add_linear(c, chain_strength)
            hw.add_quadratic(a, c, -2.0 * chain_strength)
    return hw


def unembed_sampleset(
    hardware_samples: SampleSet,
    embedding: Embedding,
    hardware_model: QuboModel,
    logical_model: QuboModel,
) -> SampleSet:
    """Map hardware samples back to logical variables by chain majority vote.

    The returned set reports logical energies; ``info['chain_break_fraction']``
    records how often chains disagreed internally.
    """
    logical_vars = sorted(embedding.keys())
    breaks = 0
    total_chains = 0
    samples = []
    for s in hardware_samples:
        bits = np.zeros(logical_model.num_variables, dtype=int)
        for v in logical_vars:
            chain = embedding[v]
            values = [s.bits[hardware_model.index_of(q)] for q in chain]
            ones = sum(values)
            total_chains += 1
            if 0 < ones < len(values):
                breaks += 1
            bits[v] = 1 if ones * 2 >= len(values) else 0
        samples.append(
            Sample(tuple(int(b) for b in bits), logical_model.energy(bits), s.num_occurrences)
        )
    info = dict(hardware_samples.info)
    info["chain_break_fraction"] = breaks / max(total_chains, 1)
    return SampleSet(samples, info=info)
