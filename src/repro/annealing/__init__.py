"""Quantum-annealing stand-in (the paper's D-Wave substitute).

Reproduces both halves of Trummer & Koch's mapping pipeline:

* the *logical* level is a plain :class:`~repro.qubo.model.QuboModel`;
* the *physical* level is a Chimera hardware graph (:mod:`.chimera`), a
  chain-based minor embedding (:mod:`.embedding`), and a sampler.

Two samplers are provided: classical simulated annealing (:mod:`.simulated_annealing`)
and path-integral simulated *quantum* annealing with a transverse field
(:mod:`.sqa`).  :class:`~repro.annealing.device.AnnealerDevice` wires the
embed -> sample -> unembed pipeline into a single call.
"""

from repro.annealing.chimera import chimera_graph
from repro.annealing.device import AnnealerDevice
from repro.annealing.embedding import embed_qubo, find_embedding, unembed_sampleset
from repro.annealing.schedule import geometric_beta_schedule, linear_schedule
from repro.annealing.simulated_annealing import SimulatedAnnealingSolver
from repro.annealing.sqa import SimulatedQuantumAnnealingSolver

__all__ = [
    "chimera_graph",
    "AnnealerDevice",
    "embed_qubo",
    "find_embedding",
    "unembed_sampleset",
    "geometric_beta_schedule",
    "linear_schedule",
    "SimulatedAnnealingSolver",
    "SimulatedQuantumAnnealingSolver",
]
