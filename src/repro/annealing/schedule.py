"""Annealing schedules (inverse temperature and transverse field)."""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ReproError


def linear_schedule(start: float, end: float, steps: int) -> np.ndarray:
    """Linearly interpolated schedule with ``steps`` points."""
    if steps < 1:
        raise ReproError("schedule needs at least one step")
    return np.linspace(start, end, steps)


def geometric_beta_schedule(beta_min: float, beta_max: float, steps: int) -> np.ndarray:
    """Geometric ramp of inverse temperature (the standard SA default)."""
    if steps < 1:
        raise ReproError("schedule needs at least one step")
    if beta_min <= 0 or beta_max <= 0:
        raise ReproError("inverse temperatures must be positive")
    return np.geomspace(beta_min, beta_max, steps)


def beta_range(max_abs_coeff: float) -> tuple[float, float]:
    """Heuristic ``(beta_min, beta_max)`` from a single coefficient scale.

    Start hot enough that the largest coupling is frequently overturned and
    end cold enough that unit moves are frozen out.
    """
    scale = max(max_abs_coeff, 1e-9)
    return (0.1 / scale, 20.0 / scale)


def model_beta_range(model) -> tuple[float, float]:
    """Per-variable (dwave-neal style) ``(beta_min, beta_max)``.

    Problems with heterogeneous scales — e.g. penalty-encoded constraints or
    embedded chains next to small objective terms — need the start hot
    enough to overturn the *largest* single-flip field and the end cold
    enough to freeze the *smallest*:

    * ``beta_min = ln 2 / max_i field_i`` with
      ``field_i = |a_i| + sum_j |b_ij|`` (the largest single-flip cost), and
    * ``beta_max = ln 100 / min nonzero |coefficient|`` (the finest energy
      difference the final temperature must resolve).
    """
    a, S = model.symmetric_couplings()
    fields = np.abs(a) + np.abs(S).sum(axis=1)
    fields = fields[fields > 1e-12]
    if fields.size == 0:
        return (0.1, 10.0)
    coeffs = np.concatenate([np.abs(a), np.abs(S[np.triu_indices_from(S, k=1)])])
    coeffs = coeffs[coeffs > 1e-12]
    hot = math.log(2.0) / float(fields.max())
    cold = math.log(100.0) / float(coeffs.min()) if coeffs.size else hot * 100.0
    if cold <= hot:
        cold = hot * 100.0
    return (hot, cold)
