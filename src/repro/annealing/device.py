"""The end-to-end annealer device: embed -> sample -> unembed.

:class:`AnnealerDevice` plays the role of the D-Wave machine in the
surveyed papers: it accepts a *logical* QUBO, performs the physical mapping
onto its hardware topology (Chimera by default), samples with a
transverse-field (SQA) or thermal (SA) sampler, and maps results back.
"""

from __future__ import annotations

import networkx as nx

from repro.annealing.chimera import chimera_graph
from repro.annealing.embedding import embed_qubo, find_embedding, unembed_sampleset, verify_embedding
from repro.annealing.simulated_annealing import SimulatedAnnealingSolver
from repro.annealing.sqa import SimulatedQuantumAnnealingSolver
from repro.exceptions import EmbeddingError
from repro.qubo.model import QuboModel
from repro.qubo.sampleset import SampleSet
from repro.utils.rngtools import ensure_rng


class AnnealerDevice:
    """A simulated quantum annealer with a fixed hardware topology.

    Args:
        topology: Hardware graph; defaults to Chimera ``C(4, 4, 4)``
            (128 qubits).
        sampler: ``"sqa"`` (transverse-field path-integral, the quantum
            stand-in) or ``"sa"`` (purely thermal).
        chain_strength: Ferromagnetic chain penalty; defaults to an
            automatic scale from the problem coefficients.
    """

    def __init__(
        self,
        topology: "nx.Graph | None" = None,
        sampler: str = "sqa",
        chain_strength: "float | None" = None,
        num_reads: int = 16,
        num_sweeps: int = 128,
    ):
        self.topology = topology if topology is not None else chimera_graph(4, 4, 4)
        if sampler == "sqa":
            self._sampler = SimulatedQuantumAnnealingSolver(num_reads=num_reads, num_sweeps=num_sweeps)
        elif sampler == "sa":
            self._sampler = SimulatedAnnealingSolver(num_reads=num_reads, num_sweeps=num_sweeps)
        else:
            raise ValueError(f"unknown sampler {sampler!r}; use 'sqa' or 'sa'")
        self.sampler_name = sampler
        self.chain_strength = chain_strength

    @property
    def num_qubits(self) -> int:
        """Physical qubit count of the device."""
        return self.topology.number_of_nodes()

    def find_embedding(self, model: QuboModel, rng=None):
        """Compute (and verify) an embedding of the model's interaction graph.

        Exposed separately so batch runners can reuse one embedding across
        structurally identical QUBOs instead of re-searching per solve.
        """
        rng = ensure_rng(rng)
        source = model.interaction_graph()
        embedding = find_embedding(source, self.topology, rng=rng)
        if not verify_embedding(source, self.topology, embedding):
            raise EmbeddingError("embedding verification failed")
        return embedding

    def sample(self, model: QuboModel, rng=None, embedding=None) -> SampleSet:
        """Solve a logical QUBO through the full physical pipeline.

        The returned sample set is logical (unembedded); ``info`` carries the
        embedding statistics (``max_chain_length``, ``chain_break_fraction``,
        ``physical_qubits``).  ``embedding`` optionally supplies a
        precomputed mapping (from :meth:`find_embedding`) to skip the search.
        """
        rng = ensure_rng(rng)
        if embedding is None:
            embedding = self.find_embedding(model, rng=rng)
        hardware_model = embed_qubo(model, embedding, self.topology, chain_strength=self.chain_strength)
        chains = [
            [hardware_model.index_of(q) for q in chain]
            for chain in embedding.values()
            if len(chain) > 1
        ]
        if chains and hasattr(self._sampler, "solve") and self.sampler_name == "sa":
            hardware_samples = self._sampler.solve(hardware_model, rng=rng, blocks=chains)
        else:
            hardware_samples = self._sampler.solve(hardware_model, rng=rng)
        logical = unembed_sampleset(hardware_samples, embedding, hardware_model, model)
        logical.info["sampler"] = self.sampler_name
        logical.info["physical_qubits"] = sum(len(c) for c in embedding.values())
        logical.info["max_chain_length"] = max((len(c) for c in embedding.values()), default=0)
        return logical

    def sample_unembedded(self, model: QuboModel, rng=None) -> SampleSet:
        """Bypass the topology: sample the logical QUBO directly.

        This is the "ideal annealer" mode used to separate embedding effects
        from sampler quality in the ablation benchmarks.
        """
        return self._sampler.solve(model, rng=ensure_rng(rng))
