"""Simulated quantum annealing (path-integral Monte Carlo).

Approximates a transverse-field quantum annealer — the physics of the
D-Wave machines used by [20], [23]-[26], [29], [30] — via the standard
Suzuki-Trotter mapping: the quantum system at inverse temperature ``beta``
with transverse field ``Gamma`` maps to ``P`` coupled classical replicas
("Trotter slices") with a ferromagnetic inter-slice coupling

    J_perp = -(1 / (2 beta)) * ln(tanh(beta * Gamma / P))

The anneal ramps ``Gamma`` down (quantum fluctuations -> 0) while the
problem couplings act at full strength.
"""

from __future__ import annotations

import math

import numpy as np

from repro.annealing.schedule import linear_schedule
from repro.exceptions import ReproError
from repro.qubo.ising import qubo_to_ising
from repro.qubo.model import QuboModel
from repro.qubo.sampleset import SampleSet
from repro.utils.rngtools import ensure_rng


def _greedy_quench(model: QuboModel, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Steepest-descent single-flip quench of each row to a local minimum.

    The physical annealer's final read-out happens deep in the classical
    regime; this quench plays that role after the Trotter dynamics stop.
    """
    a, S = model.symmetric_couplings()
    rows = np.array(rows, dtype=int)
    for r in range(rows.shape[0]):
        x = rows[r]
        fields = S @ x
        while True:
            deltas = (1 - 2 * x) * (a + fields)
            i = int(np.argmin(deltas))
            if deltas[i] >= -1e-12:
                break
            sign = 1 - 2 * x[i]
            x[i] ^= 1
            fields += S[:, i] * sign
    return rows, model.energies(rows)


class SimulatedQuantumAnnealingSolver:
    """Path-integral Monte Carlo QUBO sampler.

    Args:
        num_reads: Independent annealing trajectories.
        num_sweeps: Monte Carlo sweeps (one sweep = every spin in every slice).
        num_slices: Trotter slices ``P``.
        beta: Inverse temperature of the simulated quantum system.
        gamma_schedule: Transverse-field ladder; defaults to a linear ramp
            from 3.0 to 0.05 (in units of the coefficient scale).
    """

    def __init__(
        self,
        num_reads: int = 16,
        num_sweeps: int = 128,
        num_slices: int = 8,
        beta: float = 2.0,
        gamma_schedule: "np.ndarray | None" = None,
    ):
        if num_slices < 2:
            raise ReproError("SQA needs at least 2 Trotter slices")
        self.num_reads = num_reads
        self.num_sweeps = num_sweeps
        self.num_slices = num_slices
        self.beta = beta
        self.gamma_schedule = gamma_schedule

    def solve(self, model: QuboModel, rng=None) -> SampleSet:
        rng = ensure_rng(rng)
        ham = qubo_to_ising(model)
        n = model.num_variables
        scale = max(model.max_abs_coefficient(), 1e-9)
        gammas = self.gamma_schedule
        if gammas is None:
            gammas = linear_schedule(3.0 * scale, 0.05 * scale, self.num_sweeps)
        elif len(gammas) != self.num_sweeps:
            gammas = np.interp(
                np.linspace(0, 1, self.num_sweeps), np.linspace(0, 1, len(gammas)), gammas
            )

        h = np.zeros(n)
        for i, v in ham.linear.items():
            h[i] = v
        J = np.zeros((n, n))
        for (i, j), v in ham.quadratic.items():
            J[i, j] = v
            J[j, i] = v

        P, R = self.num_slices, self.num_reads
        beta_slice = self.beta / P
        # spins[r, p, i] in {-1, +1}
        spins = rng.choice([-1, 1], size=(R, P, n))
        fields = np.einsum("rpi,ij->rpj", spins, J)

        for gamma in gammas:
            arg = self.beta * gamma / P
            j_perp = -0.5 / self.beta * math.log(max(math.tanh(max(arg, 1e-12)), 1e-300))
            order = rng.permutation(n)
            uniforms = rng.random((R, P, n))
            for i in order:
                for p in range(P):
                    up, down = (p + 1) % P, (p - 1) % P
                    s = spins[:, p, i]
                    # Flipping s -> -s changes the problem energy by
                    # -2 s (h_i + field_i); the 1/P weights each slice.
                    d_problem = -2.0 * s * (h[i] + fields[:, p, i]) / P
                    d_perp = 2.0 * j_perp * s * (spins[:, up, i] + spins[:, down, i])
                    delta = d_problem + d_perp
                    accept = (delta <= 0) | (
                        uniforms[:, p, i] < np.exp(-self.beta * np.clip(delta, 0, 700))
                    )
                    if not accept.any():
                        continue
                    spins[accept, p, i] *= -1
                    fields[accept, p] += np.outer(2.0 * spins[accept, p, i], J[i])

        # Evaluate every slice of every read against the true QUBO and keep
        # each read's best slice.
        X = ((1 - spins) // 2).reshape(R * P, n)
        energies = model.energies(X)
        per_read = energies.reshape(R, P)
        best_slice = per_read.argmin(axis=1)
        rows = X.reshape(R, P, n)[np.arange(R), best_slice]
        rows, best_energies = _greedy_quench(model, rows)
        return SampleSet.from_arrays(
            rows,
            best_energies,
            info={
                "solver": "simulated_quantum_annealing",
                "reads": R,
                "slices": P,
                "sweeps": self.num_sweeps,
            },
        )
