"""Chimera hardware topology (the D-Wave 2X working graph of [20]).

A Chimera graph ``C(m, n, t)`` is an ``m x n`` grid of ``K_{t,t}`` unit
cells.  Within a cell the two sides (u = 0 "vertical", u = 1 "horizontal")
are completely bipartitely connected; vertical qubits couple to the same
position in the cell below, horizontal qubits to the cell to the right.
"""

from __future__ import annotations

import networkx as nx

from repro.exceptions import ReproError


def chimera_node(row: int, col: int, side: int, k: int, n: int, t: int) -> int:
    """Linear index of the Chimera node ``(row, col, side, k)``."""
    return ((row * n + col) * 2 + side) * t + k


def chimera_clique_embedding(m: int, t: int, size: int) -> dict[int, list[int]]:
    """The standard Chimera clique embedding: chains for ``K_size``.

    Chain ``i`` (block ``b = i // t``, offset ``k = i % t``) consists of the
    vertical qubits of column ``b`` (all rows) plus the horizontal qubits of
    row ``b`` (all columns), both at offset ``k`` — a cross shape of ``2m``
    qubits.  Any two chains meet in the cell at (row of one, column of the
    other), so every pair is coupled; supports cliques up to ``t * m``.
    """
    if size < 1:
        raise ReproError("clique size must be positive")
    if size > t * m:
        raise ReproError(f"Chimera C({m},{m},{t}) supports cliques up to {t * m}, got {size}")
    embedding: dict[int, list[int]] = {}
    for i in range(size):
        block, k = divmod(i, t)
        chain = [chimera_node(row, block, 0, k, m, t) for row in range(m)]
        chain += [chimera_node(block, col, 1, k, m, t) for col in range(m)]
        embedding[i] = chain
    return embedding


def chimera_shape(graph: nx.Graph) -> "tuple[int, int, int] | None":
    """Recover ``(m, n, t)`` from a graph built by :func:`chimera_graph`.

    Returns ``None`` when the graph does not carry Chimera coordinates.
    """
    if graph.number_of_nodes() == 0:
        return None
    attrs = graph.nodes[next(iter(graph.nodes))]
    if not {"row", "col", "side", "k"}.issubset(attrs):
        return None
    m = max(d["row"] for _, d in graph.nodes(data=True)) + 1
    n = max(d["col"] for _, d in graph.nodes(data=True)) + 1
    t = max(d["k"] for _, d in graph.nodes(data=True)) + 1
    if graph.number_of_nodes() != m * n * 2 * t:
        return None
    return m, n, t


def chimera_graph(m: int, n: "int | None" = None, t: int = 4) -> nx.Graph:
    """Build ``C(m, n, t)`` with integer node labels.

    Node attributes ``row``, ``col``, ``side``, ``k`` keep the structured
    coordinates.  ``C(12, 12, 4)`` is the 1152-qubit D-Wave 2X topology
    used in the MQO paper [20]; tests and benches use smaller instances.
    """
    if n is None:
        n = m
    if m < 1 or n < 1 or t < 1:
        raise ReproError("Chimera dimensions must be positive")
    g = nx.Graph()
    for row in range(m):
        for col in range(n):
            for side in (0, 1):
                for k in range(t):
                    g.add_node(
                        chimera_node(row, col, side, k, n, t),
                        row=row,
                        col=col,
                        side=side,
                        k=k,
                    )
    for row in range(m):
        for col in range(n):
            # Intra-cell complete bipartite coupling.
            for k0 in range(t):
                for k1 in range(t):
                    g.add_edge(
                        chimera_node(row, col, 0, k0, n, t),
                        chimera_node(row, col, 1, k1, n, t),
                    )
            # Inter-cell couplers.
            if row + 1 < m:
                for k in range(t):
                    g.add_edge(
                        chimera_node(row, col, 0, k, n, t),
                        chimera_node(row + 1, col, 0, k, n, t),
                    )
            if col + 1 < n:
                for k in range(t):
                    g.add_edge(
                        chimera_node(row, col, 1, k, n, t),
                        chimera_node(row, col + 1, 1, k, n, t),
                    )
    return g
