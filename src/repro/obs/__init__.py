"""``repro.obs`` — end-to-end tracing, flight recorder, structured logging.

Stdlib-only observability for the four-layer pipeline (facade -> engine
plan/shard -> scheduler/executor -> service wave).  See
``docs/observability.md`` for the span taxonomy, the context-propagation
rules per executor, and the service's ``/v1/traces`` API.

Tracing is **off by default** (zero-overhead no-op call sites); the
service enables it by constructing a :class:`~repro.obs.trace.Tracer`
over its :class:`~repro.obs.recorder.FlightRecorder`, and library users
opt in with :func:`~repro.obs.trace.install` or a scoped
:func:`~repro.obs.trace.activate`.
"""

from repro.obs.recorder import FlightRecorder
from repro.obs.trace import (
    SpanCollector,
    SpanHandle,
    TraceContext,
    Tracer,
    activate,
    active_tracer,
    collector_for,
    current_context,
    current_ids,
    ingest,
    install,
    request_slice,
    span,
)

__all__ = [
    "FlightRecorder",
    "SpanCollector",
    "SpanHandle",
    "TraceContext",
    "Tracer",
    "activate",
    "active_tracer",
    "collector_for",
    "current_context",
    "current_ids",
    "ingest",
    "install",
    "request_slice",
    "span",
]
