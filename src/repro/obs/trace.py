"""Spans, tracers, and cross-executor trace context — stdlib only.

One request through the stack touches four layers (facade -> engine plan/
shard -> scheduler/executor -> service wave) and three concurrency regimes
(asyncio tasks, thread pools, process pools).  This module gives every
layer the same three primitives:

* :func:`span` — the instrumentation call site.  ``with span("name",
  key=value):`` opens a child of the context's current span, times it on
  the monotonic clock, and emits it to the active tracer's sink on exit.
  With no tracer active it returns a shared no-op context manager: the
  disabled cost is one ``ContextVar.get`` plus one global read, which is
  what keeps the no-op overhead inside the benchmark gate.
* :class:`Tracer` — builds spans and hands them to a ``sink`` callable
  (the service's :class:`~repro.obs.recorder.FlightRecorder`, or a
  :class:`SpanCollector` buffering for a worker).  ``begin``/``end`` exist
  for spans that cross task boundaries (queue wait starts on the handler
  task and ends on the dispatcher).
* :class:`TraceContext` — the picklable ``(trace_id, span_id)`` pair that
  travels *inside* shard payloads.  ``ThreadPoolExecutor`` does not copy
  contextvars into its workers and process pools cannot share memory at
  all, so the engine stamps the current context into each payload; the
  worker rebuilds parentage from it with a local :class:`SpanCollector`
  and returns the collected spans alongside its results, which the
  dispatching side re-emits via :func:`ingest`.  Asyncio needs none of
  this: tasks and ``asyncio.to_thread`` copy the ambient context, so the
  contextvars propagate on their own.

Spans are plain dicts (JSON-ready, picklable)::

    {"name": ..., "trace_id": ..., "span_id": ..., "parent_id": ...,
     "start_s": <epoch>, "duration_s": <monotonic delta>,
     "status": "ok" | "error", "attrs": {...}}

Determinism: ids come from ``os.urandom`` and timing from
``time.perf_counter`` — neither touches any ``numpy`` RNG stream, so
seeds, fingerprints, and wave composition are trace-invariant by
construction.
"""

from __future__ import annotations

import contextvars
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable

#: Tracer activated for the current context (``with activate(tracer):``).
_ACTIVE: "contextvars.ContextVar[Tracer | None]" = contextvars.ContextVar(
    "repro_obs_tracer", default=None
)
#: Innermost open span of the current context (parent for new spans).
_SPAN: "contextvars.ContextVar[dict | None]" = contextvars.ContextVar(
    "repro_obs_span", default=None
)
#: Process-wide fallback tracer (see :func:`install`).
_GLOBAL: "Tracer | None" = None


def _new_id(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


@dataclass(frozen=True)
class TraceContext:
    """A picklable pointer into a trace: parent for remote-side spans."""

    trace_id: str
    span_id: "str | None" = None


def _parent_ids(parent) -> "tuple[str | None, str | None]":
    """``(trace_id, span_id)`` from a span dict, TraceContext, or None."""
    if parent is None:
        return None, None
    if isinstance(parent, TraceContext):
        return parent.trace_id, parent.span_id
    return parent["trace_id"], parent["span_id"]


class Tracer:
    """Creates spans and emits finished ones to ``sink`` (a callable)."""

    def __init__(self, sink: "Callable[[dict], None] | None" = None):
        self.sink = sink

    # -- manual span lifecycle (cross-task spans) ------------------------------

    def begin(self, name: str, parent=None, **attrs) -> dict:
        """Open a span; a ``parent`` of ``None`` starts a fresh trace."""
        trace_id, parent_id = _parent_ids(parent)
        return {
            "name": name,
            "trace_id": trace_id if trace_id is not None else _new_id(8),
            "span_id": _new_id(4),
            "parent_id": parent_id,
            "start_s": time.time(),
            "duration_s": None,
            "status": "ok",
            "attrs": attrs,
            "_t0": time.perf_counter(),
        }

    def end(self, span: dict, error: "BaseException | str | None" = None) -> None:
        """Close a span (idempotent) and emit it to the sink."""
        t0 = span.pop("_t0", None)
        if t0 is None:
            return  # already ended
        span["duration_s"] = time.perf_counter() - t0
        if error is not None:
            span["status"] = "error"
            span["error"] = str(error) or type(error).__name__
        if self.sink is not None:
            self.sink(span)

    # -- scoped spans ----------------------------------------------------------

    def span(self, name: str, parent=None, **attrs) -> "_SpanScope":
        """``with tracer.span("name") as handle:`` — scoped child span."""
        return _SpanScope(self, name, parent, attrs)

    def ingest(self, spans: "Iterable[dict]") -> None:
        """Re-emit spans collected elsewhere (a worker's SpanCollector)."""
        if self.sink is None:
            return
        for span in spans:
            self.sink(span)


class SpanCollector(Tracer):
    """A tracer that buffers finished spans for a later :func:`ingest`."""

    def __init__(self):
        self.spans: list[dict] = []
        super().__init__(sink=self.spans.append)

    def drain(self) -> list[dict]:
        # Clear in place: the sink closure is bound to this list object, so
        # rebinding self.spans would strand future spans in the drained list.
        spans = self.spans[:]
        self.spans.clear()
        return spans


class SpanHandle:
    """What ``with span(...) as handle:`` yields: attrs and identity access."""

    __slots__ = ("span",)

    def __init__(self, span: dict):
        self.span = span

    def set(self, **attrs) -> None:
        """Attach attributes learned mid-span (cache hit, routing mode)."""
        self.span["attrs"].update(attrs)

    @property
    def trace_id(self) -> str:
        return self.span["trace_id"]

    @property
    def span_id(self) -> str:
        return self.span["span_id"]

    def context(self) -> TraceContext:
        return TraceContext(self.span["trace_id"], self.span["span_id"])


class _SpanScope:
    __slots__ = ("tracer", "name", "parent", "attrs", "span", "_token")

    def __init__(self, tracer: Tracer, name: str, parent, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.parent = parent
        self.attrs = attrs

    def __enter__(self) -> SpanHandle:
        parent = self.parent if self.parent is not None else _SPAN.get()
        self.span = self.tracer.begin(self.name, parent=parent, **self.attrs)
        self._token = _SPAN.set(self.span)
        return SpanHandle(self.span)

    def __exit__(self, exc_type, exc, tb) -> bool:
        _SPAN.reset(self._token)
        self.tracer.end(self.span, error=exc)
        return False


class _NoopHandle:
    __slots__ = ()
    trace_id = None
    span_id = None

    def set(self, **attrs) -> None:
        pass

    def context(self) -> None:
        return None


class _NoopScope:
    __slots__ = ()

    def __enter__(self) -> _NoopHandle:
        return _NOOP_HANDLE

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_HANDLE = _NoopHandle()
_NOOP_SCOPE = _NoopScope()


# -- module-level instrumentation API ---------------------------------------


def active_tracer() -> "Tracer | None":
    """The context's tracer, falling back to the installed global one."""
    tracer = _ACTIVE.get()
    return tracer if tracer is not None else _GLOBAL


def span(name: str, **attrs):
    """Open a scoped span on the active tracer; no-op when tracing is off.

    This is the hot-path call site: when no tracer is active the cost is a
    ``ContextVar.get``, a global read, and returning a shared no-op scope.
    """
    tracer = _ACTIVE.get()
    if tracer is None:
        tracer = _GLOBAL
        if tracer is None:
            return _NOOP_SCOPE
    return _SpanScope(tracer, name, None, attrs)


class activate:
    """``with activate(tracer):`` — route :func:`span` calls to ``tracer``.

    Scoped to the current context (task/thread), so concurrent requests
    can carry different collectors without touching the global tracer.
    """

    __slots__ = ("tracer", "_token", "_span_token")

    def __init__(self, tracer: "Tracer | None"):
        self.tracer = tracer

    def __enter__(self) -> "Tracer | None":
        self._token = _ACTIVE.set(self.tracer)
        self._span_token = _SPAN.set(None)  # a fresh root, not the caller's span
        return self.tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        _SPAN.reset(self._span_token)
        _ACTIVE.reset(self._token)
        return False


def install(tracer: "Tracer | None") -> None:
    """Set (or with ``None`` clear) the process-wide fallback tracer.

    Library users who want traces without the service call
    ``install(Tracer(sink=recorder.record))`` once; :func:`activate`
    still overrides per context.
    """
    global _GLOBAL
    _GLOBAL = tracer


def current_context() -> "TraceContext | None":
    """Picklable pointer to the current span (payload stamping), or None."""
    current = _SPAN.get()
    if current is None:
        return None
    return TraceContext(current["trace_id"], current["span_id"])


def current_ids() -> "tuple[str | None, str | None]":
    """``(trace_id, span_id)`` of the current span (logging enrichment)."""
    current = _SPAN.get()
    if current is None:
        return None, None
    return current["trace_id"], current["span_id"]


def ingest(spans: "Iterable[dict]") -> None:
    """Forward worker-collected spans to the active tracer (if any)."""
    tracer = active_tracer()
    if tracer is not None:
        tracer.ingest(spans)


# -- worker-side helpers (payload-carried context) --------------------------


def collector_for(context: "TraceContext | None") -> "SpanCollector | None":
    """A worker-local collector when the payload carries a context."""
    return None if context is None else SpanCollector()


def request_slice(spans: "list[dict]", span_id: "str | None") -> list[dict]:
    """The subset of ``spans`` relevant to the request that owns ``span_id``.

    A coalesced wave solves many requests in one engine call, so its span
    set interleaves every request's work.  For one request — identified by
    its ``engine.solve`` span id — the relevant slice is:

    * the span itself, its ancestors (shard -> execute -> facade), and its
      descendants;
    * spans under the same root that are scoped to the *same shard*
      (``engine.shard`` ancestry or a matching ``shard`` attribute:
      cache lookups, route decisions);
    * unsharded same-root spans (plan compile, store prefetch/checkpoint)
      — shared work every request in the call paid for.

    Spans of sibling requests' shards are excluded.  Returns ``[]`` when
    ``span_id`` is unknown (e.g. a result served without a trace stamp).
    """
    by_id = {s["span_id"]: s for s in spans}
    target = by_id.get(span_id)
    if target is None:
        return []

    def ancestry(span: dict) -> list[dict]:
        chain = [span]
        seen = {span["span_id"]}
        while True:
            parent = by_id.get(chain[-1].get("parent_id"))
            if parent is None or parent["span_id"] in seen:
                return chain
            seen.add(parent["span_id"])
            chain.append(parent)

    target_chain = ancestry(target)
    root_id = target_chain[-1]["span_id"]
    own_shard_ids = {s["span_id"] for s in target_chain if s["name"] == "engine.shard"}
    target_shard = target["attrs"].get("shard")

    kept = []
    for candidate in spans:
        chain = ancestry(candidate)
        if chain[-1]["span_id"] != root_id:
            continue  # a different engine call in the same wave
        if any(
            s["name"] == "engine.shard" and s["span_id"] not in own_shard_ids
            for s in chain
        ):
            continue  # scoped under a sibling request's shard
        shard_attr = candidate["attrs"].get("shard")
        in_own_shard = any(s["span_id"] in own_shard_ids for s in chain)
        if shard_attr is not None and shard_attr != target_shard and not in_own_shard:
            continue  # shard-attributed work for a different shard
        kept.append(candidate)
    return kept
