"""Structured logging (``repro.obs.log``): JSON or text, span-id enriched.

The service's operational output used to be ad-hoc ``print`` calls; this
module replaces them with stdlib :mod:`logging` under the ``repro``
namespace, formatted either as one JSON object per line (``fmt="json"``,
the aggregator-friendly shape) or classic text.  Every record is enriched
with the current trace/span ids (when a span is open in the emitting
context), so a log line can be joined to its flight-recorder trace.

Extra structured fields ride the stdlib ``extra`` mechanism under one
key::

    log = get_logger("service")
    log.info("wave dispatched", extra={"fields": {"wave": 7, "size": 12}})

``configure`` is idempotent — calling it again replaces the handler, so
tests and re-execs never stack duplicate outputs.
"""

from __future__ import annotations

import json
import logging
import sys

from repro.obs import trace as _trace

#: Accepted ``--log-level`` / config spellings.
LEVELS = {"debug": logging.DEBUG, "info": logging.INFO,
          "warning": logging.WARNING, "error": logging.ERROR}
#: Accepted ``--log-format`` / config spellings.
FORMATS = ("json", "text")


class TraceContextFilter(logging.Filter):
    """Stamp the emitting context's trace/span ids onto every record."""

    def filter(self, record: logging.LogRecord) -> bool:
        trace_id, span_id = _trace.current_ids()
        record.trace_id = trace_id
        record.span_id = span_id
        return True


class JsonFormatter(logging.Formatter):
    """One strict-JSON object per line; unknown values are stringified."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        if getattr(record, "trace_id", None):
            payload["trace_id"] = record.trace_id
            payload["span_id"] = record.span_id
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            payload.update(fields)
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


class TextFormatter(logging.Formatter):
    """Human-shaped lines with the same enrichment as the JSON shape."""

    def format(self, record: logging.LogRecord) -> str:
        parts = [
            self.formatTime(record, "%H:%M:%S"),
            record.levelname,
            record.name,
            record.getMessage(),
        ]
        if getattr(record, "trace_id", None):
            parts.append(f"trace={record.trace_id}/{record.span_id}")
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            parts.extend(f"{key}={value}" for key, value in fields.items())
        line = " ".join(str(p) for p in parts)
        if record.exc_info:
            line = f"{line}\n{self.formatException(record.exc_info)}"
        return line


def configure(level: str = "info", fmt: str = "text", stream=None) -> logging.Logger:
    """(Re)configure the ``repro`` logger; returns it.

    Args:
        level: ``debug`` / ``info`` / ``warning`` / ``error`` (any case).
        fmt: ``"json"`` (one object per line) or ``"text"``.
        stream: Output stream (default ``sys.stderr`` — stdout stays
            reserved for machine-parsed banners like the service's
            ``listening on`` line).
    """
    level_no = LEVELS.get(str(level).lower())
    if level_no is None:
        raise ValueError(f"log level must be one of {sorted(LEVELS)}, got {level!r}")
    if fmt not in FORMATS:
        raise ValueError(f"log format must be one of {FORMATS}, got {fmt!r}")
    logger = logging.getLogger("repro")
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if fmt == "json" else TextFormatter())
    handler.addFilter(TraceContextFilter())
    logger.handlers[:] = [handler]
    logger.setLevel(level_no)
    logger.propagate = False
    return logger


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` namespace (``get_logger("service")``)."""
    if not name:
        return logging.getLogger("repro")
    if name == "repro" or name.startswith("repro."):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")
