"""The flight recorder: a bounded in-memory ring buffer of recent traces.

The service owns one :class:`FlightRecorder` and points its tracer's sink
here.  Memory is bounded twice over — at most ``max_traces`` traces, each
holding at most ``max_spans`` spans — because a recorder that can grow
without bound is an outage waiting for a traffic spike.  Eviction is
oldest-trace-first (ring-buffer semantics); everything dropped is counted
in ``dropped_total`` so operators can see recorder pressure on
``/readyz`` instead of silently losing history.

Thread-safety: spans arrive from the event loop (service spans), wave
worker threads (grafted engine spans), and — through collectors — any
executor; one lock covers every mutation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict


class FlightRecorder:
    """Ring buffer of traces, queryable by trace id, job id, or recency."""

    def __init__(self, max_traces: int = 256, max_spans: int = 512):
        if max_traces < 1 or max_spans < 1:
            raise ValueError("FlightRecorder bounds must be >= 1")
        self.max_traces = max_traces
        self.max_spans = max_spans
        self._traces: "OrderedDict[str, dict]" = OrderedDict()
        self._by_job: "dict[str, str]" = {}
        self._lock = threading.Lock()
        self.dropped_total = 0

    # -- writers ---------------------------------------------------------------

    def record(self, span: dict) -> None:
        """Append one finished span to its trace (a tracer sink)."""
        trace_id = span.get("trace_id")
        if not trace_id:
            return
        with self._lock:
            bucket = self._traces.get(trace_id)
            if bucket is None:
                bucket = {"spans": [], "meta": {}}
                self._traces[trace_id] = bucket
                self._evict_over_cap()
            if len(bucket["spans"]) >= self.max_spans:
                self.dropped_total += 1
                return
            bucket["spans"].append(span)

    def annotate(self, trace_id: str, **meta) -> None:
        """Attach request metadata (job id, tenant) to a trace."""
        with self._lock:
            bucket = self._traces.get(trace_id)
            if bucket is None:
                bucket = {"spans": [], "meta": {}}
                self._traces[trace_id] = bucket
                self._evict_over_cap()
            bucket["meta"].update(meta)
            job_id = meta.get("job_id")
            if job_id:
                self._by_job[job_id] = trace_id

    # -- readers ---------------------------------------------------------------

    def get(self, trace_id: str) -> "dict | None":
        """One trace as a JSON-ready dict: meta, flat spans, nested tree."""
        with self._lock:
            bucket = self._traces.get(trace_id)
            if bucket is None:
                return None
            spans = [dict(s, attrs=dict(s["attrs"])) for s in bucket["spans"]]
            meta = dict(bucket["meta"])
        spans.sort(key=lambda s: s["start_s"])
        return {
            "trace_id": trace_id,
            **meta,
            "duration_s": _trace_duration(spans),
            "span_count": len(spans),
            "spans": spans,
            "tree": _span_tree(spans),
        }

    def get_by_job(self, job_id: str) -> "dict | None":
        with self._lock:
            trace_id = self._by_job.get(job_id)
        return None if trace_id is None else self.get(trace_id)

    def recent(
        self,
        limit: int = 50,
        tenant: "str | None" = None,
        min_duration_s: "float | None" = None,
    ) -> list[dict]:
        """Newest-first trace summaries, optionally filtered.

        ``tenant`` keeps only traces annotated with that tenant;
        ``min_duration_s`` keeps only traces at least that slow — the
        "show me the slow requests" query.
        """
        with self._lock:
            items = [
                (trace_id, list(bucket["spans"]), dict(bucket["meta"]))
                for trace_id, bucket in self._traces.items()
            ]
        summaries = []
        for trace_id, spans, meta in reversed(items):
            if tenant is not None and meta.get("tenant") != tenant:
                continue
            duration = _trace_duration(spans)
            if min_duration_s is not None and duration < min_duration_s:
                continue
            roots = [s["name"] for s in spans if not s.get("parent_id")]
            summaries.append({
                "trace_id": trace_id,
                **meta,
                "root": roots[0] if roots else (spans[0]["name"] if spans else None),
                "span_count": len(spans),
                "duration_s": duration,
                "started_s": min((s["start_s"] for s in spans), default=None),
            })
            if len(summaries) >= limit:
                break
        return summaries

    def stats(self) -> dict:
        """``{"traces_buffered", "dropped_total"}`` (the /readyz feed)."""
        with self._lock:
            return {
                "traces_buffered": len(self._traces),
                "dropped_total": self.dropped_total,
            }

    # -- internals -------------------------------------------------------------

    def _evict_over_cap(self) -> None:
        while len(self._traces) > self.max_traces:
            evicted_id, evicted = self._traces.popitem(last=False)
            self.dropped_total += max(len(evicted["spans"]), 1)
            job_id = evicted["meta"].get("job_id")
            if job_id and self._by_job.get(job_id) == evicted_id:
                del self._by_job[job_id]


def _trace_duration(spans: list[dict]) -> float:
    """Wall span of the trace: max span duration envelope over start times."""
    if not spans:
        return 0.0
    start = min(s["start_s"] for s in spans)
    end = max(s["start_s"] + (s.get("duration_s") or 0.0) for s in spans)
    return max(end - start, 0.0)


def _span_tree(spans: list[dict]) -> list[dict]:
    """Nest spans by parent links; orphans surface as extra roots."""
    nodes = {
        s["span_id"]: {"name": s["name"], "span_id": s["span_id"],
                       "start_s": s["start_s"], "duration_s": s.get("duration_s"),
                       "status": s.get("status", "ok"), "attrs": dict(s["attrs"]),
                       "children": []}
        for s in spans
    }
    roots = []
    for span in spans:
        node = nodes[span["span_id"]]
        parent = nodes.get(span.get("parent_id"))
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent["children"].append(node)
    return roots
